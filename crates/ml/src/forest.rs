//! Random forest: bootstrap-aggregated CART trees with feature subsampling.

use cleanml_dataset::FeatureMatrix;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::error::MlError;
use crate::tree::{DecisionTree, TreeParams};
use crate::Result;

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split; `None` = `ceil(sqrt(d))` (the classic default).
    pub max_features: Option<usize>,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 40, max_depth: 12, min_samples_leaf: 1, max_features: None }
    }
}

impl ForestParams {
    /// Samples hyper-parameters for random search.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ForestParams {
            n_trees: *[20usize, 40, 80].choose(rng).expect("non-empty"),
            max_depth: *[6usize, 10, 14].choose(rng).expect("non-empty"),
            min_samples_leaf: *[1usize, 2, 4].choose(rng).expect("non-empty"),
            max_features: None,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
}

impl RandomForest {
    /// Trains `n_trees` CART trees on bootstrap resamples, each with
    /// per-split feature subsampling.
    pub fn fit(params: &ForestParams, data: &FeatureMatrix, seed: u64) -> Result<RandomForest> {
        if params.n_trees == 0 {
            return Err(MlError::InvalidParam { param: "n_trees", message: "0".into() });
        }
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let d = data.n_cols();
        let max_features =
            params.max_features.unwrap_or_else(|| (d as f64).sqrt().ceil() as usize).clamp(1, d);
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_split: 2,
            min_samples_leaf: params.min_samples_leaf,
            max_features: Some(max_features),
        };

        // Bootstrap index draws stay on the single shared RNG stream (the
        // draw sequence is part of the model's content address), so they
        // are materialized up front; the tree fits themselves are pure
        // functions of (bootstrap, per-tree seed) and fan out onto idle
        // pool workers via the subwork bridge. Slot-ordered collection
        // keeps the forest byte-identical to the serial loop at any
        // worker count.
        let mut rng = StdRng::seed_from_u64(seed);
        let boots: Vec<Vec<usize>> =
            (0..params.n_trees).map(|_| (0..n).map(|_| rng.random_range(0..n)).collect()).collect();
        let trees = cleanml_parallel::run_indexed(params.n_trees, |t| {
            let sample = data.select_rows(&boots[t]);
            let tree_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t as u64);
            DecisionTree::fit(&tree_params, &sample, tree_seed)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Ok(RandomForest { trees, n_features: d, n_classes: data.n_classes() })
    }

    /// Mean of per-tree leaf distributions (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let k = self.n_classes;
        let mut acc = vec![0.0; data.n_rows() * k];
        for tree in &self.trees {
            let p = tree.predict_proba(data)?;
            for (a, v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
        }
        let scale = 1.0 / self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a *= scale);
        Ok(acc)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.n_classes))
    }

    /// Number of trees (diagnostics).
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl RandomForest {
    /// Appends every member tree to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::push_usize;
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        push_usize(out, self.trees.len());
        for tree in &self.trees {
            tree.encode_into(out);
        }
    }

    /// Reads a forest written by [`RandomForest::encode_into`].
    pub(crate) fn decode_from(
        parts: &mut cleanml_dataset::codec::Reader<'_>,
    ) -> Option<RandomForest> {
        use cleanml_dataset::codec::take_usize;
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let n_trees = take_usize(parts)?;
        if n_trees == 0 {
            return None;
        }
        let mut trees = Vec::with_capacity(n_trees.min(1 << 16));
        for _ in 0..n_trees {
            trees.push(DecisionTree::decode_from(parts)?);
        }
        Some(RandomForest { trees, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn two_moons_like(n: usize) -> FeatureMatrix {
        // Interleaved offset clusters; noisy but learnable by a forest.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let t = i as f64 / n as f64 * std::f64::consts::PI;
            let c = i % 2;
            let (x, y) = if c == 0 { (t.cos(), t.sin()) } else { (1.0 - t.cos(), 0.3 - t.sin()) };
            data.push(x + (i as f64 * 0.37).sin() * 0.05);
            data.push(y + (i as f64 * 0.73).cos() * 0.05);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let data = two_moons_like(200);
        let forest = RandomForest::fit(&ForestParams::default(), &data, 1).unwrap();
        let preds = forest.predict(&data).unwrap();
        assert!(accuracy(data.labels(), &preds) > 0.9);
    }

    #[test]
    fn deterministic_by_seed() {
        let data = two_moons_like(100);
        let f1 = RandomForest::fit(&ForestParams::default(), &data, 9).unwrap();
        let f2 = RandomForest::fit(&ForestParams::default(), &data, 9).unwrap();
        assert_eq!(f1.predict(&data).unwrap(), f2.predict(&data).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let data = two_moons_like(60);
        let f1 = RandomForest::fit(&ForestParams::default(), &data, 1).unwrap();
        let f2 = RandomForest::fit(&ForestParams::default(), &data, 2).unwrap();
        let p1 = f1.predict_proba(&data).unwrap();
        let p2 = f2.predict_proba(&data).unwrap();
        assert!(p1 != p2, "bootstrap should vary with the seed");
    }

    #[test]
    fn nested_parallel_fit_is_byte_identical() {
        // The same fit through a real multi-thread subwork bridge must
        // reproduce the serial forest exactly — trees, structure, floats.
        let data = two_moons_like(120);
        let serial = RandomForest::fit(&ForestParams::default(), &data, 42).unwrap();
        cleanml_parallel::install_bridge(std::sync::Arc::new(cleanml_parallel::ThreadBridge {
            helpers: 3,
        }));
        let parallel = RandomForest::fit(&ForestParams::default(), &data, 42).unwrap();
        cleanml_parallel::clear_bridge();
        assert_eq!(serial, parallel);
        let mut a = Vec::new();
        let mut b = Vec::new();
        serial.encode_into(&mut a);
        parallel.encode_into(&mut b);
        assert_eq!(a, b, "encoded forests must be byte-identical");
    }

    #[test]
    fn probabilities_normalized() {
        let data = two_moons_like(80);
        let forest =
            RandomForest::fit(&ForestParams { n_trees: 10, ..Default::default() }, &data, 3)
                .unwrap();
        let probs = forest.predict_proba(&data).unwrap();
        for row in probs.chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_trees_rejected() {
        let data = two_moons_like(10);
        assert!(RandomForest::fit(&ForestParams { n_trees: 0, ..Default::default() }, &data, 0)
            .is_err());
    }

    #[test]
    fn n_trees_reported() {
        let data = two_moons_like(20);
        let f = RandomForest::fit(&ForestParams { n_trees: 7, ..Default::default() }, &data, 0)
            .unwrap();
        assert_eq!(f.n_trees(), 7);
    }
}
