//! Gaussian Naive Bayes with variance smoothing.
//!
//! Mirrors scikit-learn's `GaussianNB`: per-class feature means/variances
//! plus `var_smoothing` times the largest feature variance added to every
//! variance for numerical stability (one-hot encoded categoricals are
//! handled through the same Gaussian likelihood, exactly as when feeding
//! one-hot matrices to `GaussianNB`).

use cleanml_dataset::FeatureMatrix;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::error::MlError;
use crate::Result;

/// Hyper-parameters for [`GaussianNb`].
#[derive(Debug, Clone, PartialEq)]
pub struct NbParams {
    /// Fraction of the largest feature variance added to all variances.
    pub var_smoothing: f64,
}

impl Default for NbParams {
    fn default() -> Self {
        NbParams { var_smoothing: 1e-9 }
    }
}

impl NbParams {
    /// Samples hyper-parameters for random search.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        NbParams { var_smoothing: *[1e-9, 1e-7, 1e-5].choose(rng).expect("non-empty") }
    }
}

/// A fitted Gaussian Naive Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNb {
    /// `k × d` means.
    means: Vec<f64>,
    /// `k × d` smoothed variances.
    vars: Vec<f64>,
    /// Log class priors.
    log_priors: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl GaussianNb {
    /// Estimates per-class Gaussians.
    pub fn fit(params: &NbParams, data: &FeatureMatrix) -> Result<GaussianNb> {
        if params.var_smoothing.is_nan() || params.var_smoothing < 0.0 {
            return Err(MlError::InvalidParam {
                param: "var_smoothing",
                message: format!("{}", params.var_smoothing),
            });
        }
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let d = data.n_cols();
        let k = data.n_classes();

        let mut counts = vec![0usize; k];
        for &c in data.labels() {
            counts[c] += 1;
        }
        // Column-outer sweeps: each per-(class, feature) accumulator still
        // receives its examples in ascending-row order, so the sums are
        // term-for-term identical to a row-major pass.
        let mut means = vec![0.0; k * d];
        for j in 0..d {
            let col = data.col(j);
            for (i, &x) in col.iter().enumerate() {
                means[data.labels()[i] * d + j] += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                means[c * d..(c + 1) * d].iter_mut().for_each(|m| *m *= inv);
            }
        }

        let mut vars = vec![0.0; k * d];
        for j in 0..d {
            let col = data.col(j);
            for (i, &x) in col.iter().enumerate() {
                let c = data.labels()[i];
                let dev = x - means[c * d + j];
                vars[c * d + j] += dev * dev;
            }
        }
        let mut max_var = 0.0f64;
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for vj in vars[c * d..(c + 1) * d].iter_mut() {
                    *vj *= inv;
                    max_var = max_var.max(*vj);
                }
            }
        }
        let eps = params.var_smoothing * max_var.max(1e-12);
        vars.iter_mut().for_each(|v| *v += eps.max(1e-12));

        // Laplace-smoothed priors so classes absent from a fold keep a
        // (vanishing) probability instead of -inf.
        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| ((c as f64 + 1e-10) / (n as f64 + 1e-10 * k as f64)).ln())
            .collect();

        Ok(GaussianNb { means, vars, log_priors, n_features: d, n_classes: k })
    }

    /// Posterior class probabilities (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let d = self.n_features;
        let k = self.n_classes;
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        let mut out = vec![0.0; data.n_rows() * k];
        let mut x = vec![0.0; d];
        for i in 0..data.n_rows() {
            data.read_row(i, &mut x);
            let row = &mut out[i * k..(i + 1) * k];
            for (c, out_c) in row.iter_mut().enumerate() {
                let m = &self.means[c * d..(c + 1) * d];
                let v = &self.vars[c * d..(c + 1) * d];
                let mut ll = self.log_priors[c];
                for ((xj, mj), vj) in x.iter().zip(m).zip(v) {
                    let dev = xj - mj;
                    ll += -0.5 * (ln_2pi + vj.ln() + dev * dev / vj);
                }
                *out_c = ll;
            }
            crate::logistic::softmax(row);
        }
        Ok(out)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.n_classes))
    }
}

impl GaussianNb {
    /// Appends the per-class Gaussians to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::push_usize;
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        crate::codec::push_f64_vec(out, &self.means);
        crate::codec::push_f64_vec(out, &self.vars);
        crate::codec::push_f64_vec(out, &self.log_priors);
    }

    /// Reads a model written by [`GaussianNb::encode_into`].
    pub(crate) fn decode_from(
        parts: &mut cleanml_dataset::codec::Reader<'_>,
    ) -> Option<GaussianNb> {
        use cleanml_dataset::codec::take_usize;
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let means = crate::codec::take_f64_vec(parts)?;
        let vars = crate::codec::take_f64_vec(parts)?;
        let log_priors = crate::codec::take_f64_vec(parts)?;
        let cells = n_classes.checked_mul(n_features)?;
        (means.len() == cells && vars.len() == cells && log_priors.len() == n_classes)
            .then_some(GaussianNb { means, vars, log_priors, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn gaussians() -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 37 % 100) as f64 / 100.0 - 0.5) * 0.8;
            data.push(base + noise);
            data.push(base - noise * 0.5);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, 60, 2, labels, 2)
    }

    #[test]
    fn separates_gaussian_classes() {
        let data = gaussians();
        let nb = GaussianNb::fit(&NbParams::default(), &data).unwrap();
        let preds = nb.predict(&data).unwrap();
        assert!(accuracy(data.labels(), &preds) > 0.95);
    }

    #[test]
    fn probabilities_normalized() {
        let data = gaussians();
        let nb = GaussianNb::fit(&NbParams::default(), &data).unwrap();
        for row in nb.predict_proba(&data).unwrap().chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_variance_feature_tolerated() {
        // Constant feature must not divide by zero.
        let data = FeatureMatrix::from_parts(
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            4,
            2,
            vec![0, 0, 1, 1],
            2,
        );
        let nb = GaussianNb::fit(&NbParams::default(), &data).unwrap();
        let preds = nb.predict(&data).unwrap();
        assert_eq!(preds.len(), 4);
        assert!(nb.predict_proba(&data).unwrap().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn priors_influence_prediction() {
        // Overlapping identical likelihoods -> prior decides.
        let data = FeatureMatrix::from_parts(
            vec![0.0, 0.0, 0.1, -0.1, 0.05],
            5,
            1,
            vec![0, 0, 0, 0, 1],
            2,
        );
        let nb = GaussianNb::fit(&NbParams { var_smoothing: 1.0 }, &data).unwrap();
        let q = FeatureMatrix::from_parts(vec![0.0], 1, 1, vec![0], 2);
        assert_eq!(nb.predict(&q).unwrap(), vec![0]); // majority prior wins
    }

    #[test]
    fn invalid_smoothing_rejected() {
        let data = gaussians();
        assert!(GaussianNb::fit(&NbParams { var_smoothing: -0.1 }, &data).is_err());
    }
}
