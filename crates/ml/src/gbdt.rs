//! Gradient-boosted decision trees with the XGBoost training objective.
//!
//! Stands in for the paper's XGBoost model: per round, one regression tree
//! per class is fit to the first/second-order gradients of the softmax
//! cross-entropy, splits maximize the regularized structure gain
//! `½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`, and leaf weights are
//! the Newton step `−G/(H+λ)` scaled by the learning rate η — the core of
//! Chen & Guestrin's algorithm (KDD'16), minus the systems-level features
//! (histogram sketches, sparsity-aware splits) that don't change accuracy on
//! CleanML-sized data.

use cleanml_dataset::FeatureMatrix;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::error::MlError;
use crate::Result;

/// Hyper-parameters for [`Gbdt`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Boosting rounds (each fits `n_classes` trees).
    pub n_rounds: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Learning rate η.
    pub eta: f64,
    /// L2 leaf regularization λ.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child (`min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 40,
            max_depth: 3,
            eta: 0.3,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1e-3,
        }
    }
}

impl GbdtParams {
    /// Samples hyper-parameters for random search (the usual XGBoost sweep).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        GbdtParams {
            n_rounds: *[20usize, 40, 80].choose(rng).expect("non-empty"),
            max_depth: *[2usize, 3, 4, 6].choose(rng).expect("non-empty"),
            eta: *[0.1f64, 0.3, 0.5].choose(rng).expect("non-empty"),
            lambda: *[0.5f64, 1.0, 2.0].choose(rng).expect("non-empty"),
            gamma: *[0.0f64, 0.1].choose(rng).expect("non-empty"),
            min_child_weight: 1e-3,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_rounds == 0 {
            return Err(MlError::InvalidParam { param: "n_rounds", message: "0".into() });
        }
        if self.eta.is_nan() || self.eta <= 0.0 {
            return Err(MlError::InvalidParam { param: "eta", message: format!("{}", self.eta) });
        }
        if self.lambda.is_nan() || self.lambda < 0.0 {
            return Err(MlError::InvalidParam {
                param: "lambda",
                message: format!("{}", self.lambda),
            });
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
enum RNode {
    Leaf(f64),
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// One regression tree over gradient statistics.
#[derive(Debug, Clone, PartialEq)]
struct RegTree {
    nodes: Vec<RNode>,
}

impl RegTree {
    /// Walks example `i` of a columnar matrix to its leaf weight.
    fn predict_row(&self, data: &FeatureMatrix, i: usize) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                RNode::Leaf(w) => return *w,
                RNode::Split { feature, threshold, left, right } => {
                    at = if data.at(i, *feature) <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    /// `rounds × classes` trees.
    trees: Vec<Vec<RegTree>>,
    eta: f64,
    n_features: usize,
    n_classes: usize,
}

struct GradCtx<'a> {
    data: &'a FeatureMatrix,
    grad: &'a [f64],
    hess: &'a [f64],
    params: &'a GbdtParams,
}

impl Gbdt {
    /// Trains the boosted ensemble on softmax cross-entropy.
    pub fn fit(params: &GbdtParams, data: &FeatureMatrix, _seed: u64) -> Result<Gbdt> {
        params.validate()?;
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes();
        let mut scores = vec![0.0; n * k];
        let mut trees: Vec<Vec<RegTree>> = Vec::with_capacity(params.n_rounds);

        let mut probs = vec![0.0; k];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];

        for _round in 0..params.n_rounds {
            let mut round_trees = Vec::with_capacity(k);
            // Gradients computed from the *current* scores for every class.
            let mut all_probs = vec![0.0; n * k];
            for i in 0..n {
                probs.copy_from_slice(&scores[i * k..(i + 1) * k]);
                crate::logistic::softmax(&mut probs);
                all_probs[i * k..(i + 1) * k].copy_from_slice(&probs);
            }
            for c in 0..k {
                for i in 0..n {
                    let p = all_probs[i * k + c];
                    let y = if data.labels()[i] == c { 1.0 } else { 0.0 };
                    grad[i] = p - y;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let ctx = GradCtx { data, grad: &grad, hess: &hess, params };
                let mut nodes = Vec::new();
                let rows: Vec<u32> = (0..n as u32).collect();
                // The chained sidecar is built once per matrix and reused by
                // every tree of every round; each node inherits
                // order-preserving partitions instead of re-sorting.
                let lists: Vec<Vec<u32>> = data.sorted_cols_chained().iter().cloned().collect();
                build_reg_node(&ctx, &mut nodes, rows, lists, 0);
                let tree = RegTree { nodes };
                for i in 0..n {
                    scores[i * k + c] += params.eta * tree.predict_row(data, i);
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }

        Ok(Gbdt { trees, eta: params.eta, n_features: data.n_cols(), n_classes: k })
    }

    /// Softmax class probabilities (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let k = self.n_classes;
        let mut out = vec![0.0; data.n_rows() * k];
        for i in 0..data.n_rows() {
            let row = &mut out[i * k..(i + 1) * k];
            for round in &self.trees {
                for (c, tree) in round.iter().enumerate() {
                    row[c] += self.eta * tree.predict_row(data, i);
                }
            }
            crate::logistic::softmax(row);
        }
        Ok(out)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.n_classes))
    }

    /// Number of boosting rounds stored.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }
}

/// Structure score `G²/(H+λ)` of a candidate node.
fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Recursively builds the regression subtree for `rows` (ascending-index
/// membership); `lists[f]` is the same membership in the chained sort order
/// of [`FeatureMatrix::sorted_cols_chained`], which reproduces the
/// pre-columnar kernel's per-node cascading stable sorts bit-for-bit.
fn build_reg_node(
    ctx: &GradCtx<'_>,
    nodes: &mut Vec<RNode>,
    rows: Vec<u32>,
    lists: Vec<Vec<u32>>,
    depth: usize,
) -> usize {
    let g_total: f64 = rows.iter().map(|&r| ctx.grad[r as usize]).sum();
    let h_total: f64 = rows.iter().map(|&r| ctx.hess[r as usize]).sum();
    let lambda = ctx.params.lambda;

    let leaf_weight = -g_total / (h_total + lambda);
    if depth >= ctx.params.max_depth || rows.len() < 2 {
        let idx = nodes.len();
        nodes.push(RNode::Leaf(leaf_weight));
        return idx;
    }

    // Best split by structure gain: one contiguous sweep per feature over
    // the pre-sorted candidate list. Each feature's sweep is a pure
    // function of (order, grad, hess), so wide nodes fan the per-feature
    // sweeps onto idle pool workers; the reduction walks features in
    // ascending order with the same strictly-greater comparison as the
    // serial loop, so the chosen split (first feature, first threshold to
    // reach the maximum) is bit-identical at any worker count.
    let d = ctx.data.n_cols();
    let parent_score = score(g_total, h_total, lambda);
    let gain_floor = ctx.params.gamma.max(1e-12);
    let sweep_feature = |f: usize| -> Option<(f64, f64)> {
        let order = &lists[f];
        let col = ctx.data.col(f);
        let mut fbest: Option<(f64, f64)> = None;
        let mut fbest_gain = gain_floor;
        let mut gl = 0.0;
        let mut hl = 0.0;
        for w in 0..order.len() - 1 {
            let r = order[w] as usize;
            gl += ctx.grad[r];
            hl += ctx.hess[r];
            let v_here = col[r];
            let v_next = col[order[w + 1] as usize];
            if v_next <= v_here {
                continue;
            }
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < ctx.params.min_child_weight || hr < ctx.params.min_child_weight {
                continue;
            }
            let gain = 0.5 * (score(gl, hl, lambda) + score(gr, hr, lambda) - parent_score);
            if gain > fbest_gain {
                fbest_gain = gain;
                fbest = Some((gain, 0.5 * (v_here + v_next)));
            }
        }
        fbest
    };

    // Fanning out only pays above a work floor; below it the serial sweep
    // wins (and both produce identical results by construction).
    const PAR_MIN_CELLS: usize = 1 << 14;
    let candidates: Vec<Option<(f64, f64)>> = if rows.len().saturating_mul(d) >= PAR_MIN_CELLS {
        cleanml_parallel::run_indexed(d, sweep_feature)
    } else {
        (0..d).map(sweep_feature).collect()
    };
    let mut best: Option<(usize, f64)> = None;
    let mut best_gain = gain_floor;
    for (f, cand) in candidates.into_iter().enumerate() {
        if let Some((gain, split)) = cand {
            if gain > best_gain {
                best_gain = gain;
                best = Some((f, split));
            }
        }
    }

    let Some((feature, threshold)) = best else {
        let idx = nodes.len();
        nodes.push(RNode::Leaf(leaf_weight));
        return idx;
    };

    // Order-stable partitions keep both membership orders in the children.
    let goes_left = |r: u32| ctx.data.at(r as usize, feature) <= threshold;
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
        rows.into_iter().partition(|&r| goes_left(r));
    let mut left_lists = Vec::with_capacity(lists.len());
    let mut right_lists = Vec::with_capacity(lists.len());
    for list in lists {
        let (l, r): (Vec<u32>, Vec<u32>) = list.into_iter().partition(|&r| goes_left(r));
        left_lists.push(l);
        right_lists.push(r);
    }

    let idx = nodes.len();
    nodes.push(RNode::Leaf(0.0)); // placeholder
    let left = build_reg_node(ctx, nodes, left_rows, left_lists, depth + 1);
    let right = build_reg_node(ctx, nodes, right_rows, right_lists, depth + 1);
    nodes[idx] = RNode::Split { feature, threshold, left, right };
    idx
}

impl RegTree {
    fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::{push_f64, push_tag, push_usize};
        push_usize(out, self.nodes.len());
        for node in &self.nodes {
            match node {
                RNode::Leaf(w) => {
                    push_tag(out, b'L');
                    push_f64(out, *w);
                }
                RNode::Split { feature, threshold, left, right } => {
                    push_tag(out, b'S');
                    push_usize(out, *feature);
                    push_f64(out, *threshold);
                    push_usize(out, *left);
                    push_usize(out, *right);
                }
            }
        }
    }

    fn decode_from(
        parts: &mut cleanml_dataset::codec::Reader<'_>,
        n_features: usize,
    ) -> Option<RegTree> {
        use cleanml_dataset::codec::{take_f64, take_usize};
        let n_nodes = take_usize(parts)?;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20));
        for i in 0..n_nodes {
            let node = match cleanml_dataset::codec::take_tag(parts)? {
                b'L' => RNode::Leaf(take_f64(parts)?),
                b'S' => {
                    let feature = take_usize(parts)?;
                    let threshold = take_f64(parts)?;
                    let left = take_usize(parts)?;
                    let right = take_usize(parts)?;
                    // forward-only children: no out-of-bounds, no cycles
                    if feature >= n_features
                        || left <= i
                        || right <= i
                        || left >= n_nodes
                        || right >= n_nodes
                    {
                        return None;
                    }
                    RNode::Split { feature, threshold, left, right }
                }
                _ => return None,
            };
            nodes.push(node);
        }
        if nodes.is_empty() {
            return None;
        }
        Some(RegTree { nodes })
    }
}

impl Gbdt {
    /// Appends the boosted ensemble to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::{push_f64, push_usize};
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        push_f64(out, self.eta);
        push_usize(out, self.trees.len());
        for round in &self.trees {
            push_usize(out, round.len());
            for tree in round {
                tree.encode_into(out);
            }
        }
    }

    /// Reads an ensemble written by [`Gbdt::encode_into`].
    pub(crate) fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<Gbdt> {
        use cleanml_dataset::codec::{take_f64, take_usize};
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let eta = take_f64(parts)?;
        let n_rounds = take_usize(parts)?;
        let mut trees = Vec::with_capacity(n_rounds.min(1 << 16));
        for _ in 0..n_rounds {
            let width = take_usize(parts)?;
            if width != n_classes {
                return None;
            }
            let mut round = Vec::with_capacity(width);
            for _ in 0..width {
                round.push(RegTree::decode_from(parts, n_features)?);
            }
            trees.push(round);
        }
        Some(Gbdt { trees, eta, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn ring_data(n: usize) -> FeatureMatrix {
        // class 1 inside a radius, class 0 outside: needs depth >= 2 trees.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            let r = if i % 2 == 0 { 0.5 } else { 2.0 };
            data.push(r * a.cos());
            data.push(r * a.sin());
            labels.push(usize::from(i % 2 == 0));
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn learns_ring() {
        let data = ring_data(200);
        let model = Gbdt::fit(&GbdtParams::default(), &data, 0).unwrap();
        let preds = model.predict(&data).unwrap();
        assert!(accuracy(data.labels(), &preds) > 0.95);
    }

    #[test]
    fn more_rounds_fit_tighter() {
        let data = ring_data(150);
        let short = Gbdt::fit(&GbdtParams { n_rounds: 1, ..Default::default() }, &data, 0).unwrap();
        let long = Gbdt::fit(&GbdtParams { n_rounds: 40, ..Default::default() }, &data, 0).unwrap();
        let a_short = accuracy(data.labels(), &short.predict(&data).unwrap());
        let a_long = accuracy(data.labels(), &long.predict(&data).unwrap());
        assert!(a_long >= a_short);
    }

    #[test]
    fn nested_parallel_split_search_is_byte_identical() {
        // Wide enough that the root node crosses the parallel work floor
        // (rows × cols ≥ 2^14), so the bridge path actually runs; the
        // fitted model must still equal the serial one bit for bit.
        let n = 3000;
        let d = 6;
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            for f in 0..d {
                data.push(((i * (f + 3)) as f64 * 0.137).sin());
            }
            labels.push(i % 2);
        }
        let m = FeatureMatrix::from_parts(data, n, d, labels, 2);
        let params = GbdtParams { n_rounds: 2, max_depth: 3, ..Default::default() };
        let serial = Gbdt::fit(&params, &m, 0).unwrap();
        cleanml_parallel::install_bridge(std::sync::Arc::new(cleanml_parallel::ThreadBridge {
            helpers: 3,
        }));
        let parallel = Gbdt::fit(&params, &m, 0).unwrap();
        cleanml_parallel::clear_bridge();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn multiclass_softmax() {
        // three clusters on a line
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            data.push(c as f64 * 5.0 + (i as f64 * 0.11) % 1.0);
            labels.push(c);
        }
        let m = FeatureMatrix::from_parts(data, 90, 1, labels, 3);
        let model = Gbdt::fit(&GbdtParams::default(), &m, 0).unwrap();
        let preds = model.predict(&m).unwrap();
        assert!(accuracy(m.labels(), &preds) > 0.95);
        for row in model.predict_proba(&m).unwrap().chunks_exact(3) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn regularization_shrinks_leaves() {
        let data = ring_data(100);
        let loose =
            Gbdt::fit(&GbdtParams { lambda: 0.0, n_rounds: 5, ..Default::default() }, &data, 0)
                .unwrap();
        let tight =
            Gbdt::fit(&GbdtParams { lambda: 50.0, n_rounds: 5, ..Default::default() }, &data, 0)
                .unwrap();
        // With huge lambda the raw scores stay near zero -> probabilities near 0.5.
        let p_loose = loose.predict_proba(&data).unwrap();
        let p_tight = tight.predict_proba(&data).unwrap();
        let spread = |p: &[f64]| p.iter().map(|x| (x - 0.5).abs()).sum::<f64>();
        assert!(spread(&p_tight) < spread(&p_loose));
    }

    #[test]
    fn gamma_prunes_splits() {
        let data = ring_data(100);
        let no_gamma =
            Gbdt::fit(&GbdtParams { gamma: 0.0, n_rounds: 3, ..Default::default() }, &data, 0)
                .unwrap();
        let big_gamma =
            Gbdt::fit(&GbdtParams { gamma: 1e9, n_rounds: 3, ..Default::default() }, &data, 0)
                .unwrap();
        let count = |m: &Gbdt| -> usize { m.trees.iter().flatten().map(|t| t.nodes.len()).sum() };
        assert!(count(&big_gamma) < count(&no_gamma));
    }

    #[test]
    fn deterministic() {
        let data = ring_data(60);
        let m1 = Gbdt::fit(&GbdtParams::default(), &data, 0).unwrap();
        let m2 = Gbdt::fit(&GbdtParams::default(), &data, 0).unwrap();
        assert_eq!(m1.predict_proba(&data).unwrap(), m2.predict_proba(&data).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let data = ring_data(10);
        assert!(Gbdt::fit(&GbdtParams { n_rounds: 0, ..Default::default() }, &data, 0).is_err());
        assert!(Gbdt::fit(&GbdtParams { eta: 0.0, ..Default::default() }, &data, 0).is_err());
        assert!(Gbdt::fit(&GbdtParams { lambda: -1.0, ..Default::default() }, &data, 0).is_err());
    }
}
