//! Multi-layer perceptron — the paper's deep-learning robust-ML baseline.
//!
//! §VII-B compares best-model-plus-best-cleaning against "a Multi-layer
//! Perceptron classifier (MLP) with three layers" tuned with optuna (hidden
//! layer size, learning rate, momentum). This module implements that model:
//! two ReLU hidden layers plus a softmax output, trained with mini-batch SGD
//! with momentum; the same random-search tuner used for the classical
//! models plays optuna's role.

use cleanml_dataset::FeatureMatrix;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use crate::error::MlError;
use crate::Result;

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// First hidden layer width.
    pub hidden1: usize,
    /// Second hidden layer width.
    pub hidden2: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// SGD momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams { hidden1: 32, hidden2: 16, lr: 0.05, momentum: 0.9, epochs: 60, batch_size: 32 }
    }
}

impl MlpParams {
    /// Samples hyper-parameters (the paper tunes hidden size, lr, momentum).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        MlpParams {
            hidden1: *[16usize, 32, 64].choose(rng).expect("non-empty"),
            hidden2: *[8usize, 16, 32].choose(rng).expect("non-empty"),
            lr: *[0.01f64, 0.05, 0.1].choose(rng).expect("non-empty"),
            momentum: *[0.5f64, 0.9].choose(rng).expect("non-empty"),
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.hidden1 == 0 || self.hidden2 == 0 {
            return Err(MlError::InvalidParam { param: "hidden", message: "0".into() });
        }
        if self.lr.is_nan() || self.lr <= 0.0 {
            return Err(MlError::InvalidParam { param: "lr", message: format!("{}", self.lr) });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(MlError::InvalidParam {
                param: "momentum",
                message: format!("{}", self.momentum),
            });
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(MlError::InvalidParam { param: "epochs/batch_size", message: "0".into() });
        }
        Ok(())
    }
}

/// Dense layer parameters.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    /// `out × in` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Layer {
        // He initialization for ReLU layers.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale).collect();
        Layer { w, b: vec![0.0; n_out], n_in, n_out }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out.push(self.b[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>());
        }
    }
}

/// A fitted MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    l1: Layer,
    l2: Layer,
    l3: Layer,
    n_features: usize,
    n_classes: usize,
}

fn relu_inplace(xs: &mut [f64]) {
    for x in xs {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

impl Mlp {
    /// Trains with mini-batch SGD + momentum on softmax cross-entropy.
    pub fn fit(params: &MlpParams, data: &FeatureMatrix, seed: u64) -> Result<Mlp> {
        params.validate()?;
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let d = data.n_cols();
        let k = data.n_classes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l1 = Layer::new(d, params.hidden1, &mut rng);
        let mut l2 = Layer::new(params.hidden1, params.hidden2, &mut rng);
        let mut l3 = Layer::new(params.hidden2, k, &mut rng);

        // Momentum buffers.
        let mut v1w = vec![0.0; l1.w.len()];
        let mut v1b = vec![0.0; l1.b.len()];
        let mut v2w = vec![0.0; l2.w.len()];
        let mut v2b = vec![0.0; l2.b.len()];
        let mut v3w = vec![0.0; l3.w.len()];
        let mut v3b = vec![0.0; l3.b.len()];

        let mut order: Vec<usize> = (0..n).collect();
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        let mut logits = Vec::new();

        // Preallocated scratch, zeroed in place instead of reallocated per
        // batch / per sample.
        let mut x = vec![0.0; d];
        let mut delta1 = vec![0.0; l1.n_out];
        let mut delta2 = vec![0.0; l2.n_out];
        let mut g1w = vec![0.0; l1.w.len()];
        let mut g1b = vec![0.0; l1.b.len()];
        let mut g2w = vec![0.0; l2.w.len()];
        let mut g2b = vec![0.0; l2.b.len()];
        let mut g3w = vec![0.0; l3.w.len()];
        let mut g3b = vec![0.0; l3.b.len()];

        for _epoch in 0..params.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(params.batch_size) {
                // Accumulate gradients over the batch.
                g1w.iter_mut().for_each(|g| *g = 0.0);
                g1b.iter_mut().for_each(|g| *g = 0.0);
                g2w.iter_mut().for_each(|g| *g = 0.0);
                g2b.iter_mut().for_each(|g| *g = 0.0);
                g3w.iter_mut().for_each(|g| *g = 0.0);
                g3b.iter_mut().for_each(|g| *g = 0.0);

                for &i in batch {
                    data.read_row(i, &mut x);
                    l1.forward(&x, &mut h1);
                    relu_inplace(&mut h1);
                    l2.forward(&h1, &mut h2);
                    relu_inplace(&mut h2);
                    l3.forward(&h2, &mut logits);
                    crate::logistic::softmax(&mut logits);

                    // delta3 = probs - onehot(y)
                    let y = data.labels()[i];
                    logits[y] -= 1.0;

                    // layer 3 grads + delta2
                    delta2.iter_mut().for_each(|d| *d = 0.0);
                    for o in 0..l3.n_out {
                        let dl = logits[o];
                        g3b[o] += dl;
                        let wrow = &l3.w[o * l3.n_in..(o + 1) * l3.n_in];
                        let grow = &mut g3w[o * l3.n_in..(o + 1) * l3.n_in];
                        for j in 0..l3.n_in {
                            grow[j] += dl * h2[j];
                            delta2[j] += dl * wrow[j];
                        }
                    }
                    for (dj, hj) in delta2.iter_mut().zip(&h2) {
                        if *hj <= 0.0 {
                            *dj = 0.0; // ReLU gate
                        }
                    }

                    // layer 2 grads + delta1
                    delta1.iter_mut().for_each(|d| *d = 0.0);
                    for o in 0..l2.n_out {
                        let dl = delta2[o];
                        g2b[o] += dl;
                        let wrow = &l2.w[o * l2.n_in..(o + 1) * l2.n_in];
                        let grow = &mut g2w[o * l2.n_in..(o + 1) * l2.n_in];
                        for j in 0..l2.n_in {
                            grow[j] += dl * h1[j];
                            delta1[j] += dl * wrow[j];
                        }
                    }
                    for (dj, hj) in delta1.iter_mut().zip(&h1) {
                        if *hj <= 0.0 {
                            *dj = 0.0;
                        }
                    }

                    // layer 1 grads
                    for o in 0..l1.n_out {
                        let dl = delta1[o];
                        g1b[o] += dl;
                        let grow = &mut g1w[o * l1.n_in..(o + 1) * l1.n_in];
                        for j in 0..l1.n_in {
                            grow[j] += dl * x[j];
                        }
                    }
                }

                let scale = params.lr / batch.len() as f64;
                let step = |w: &mut [f64], v: &mut [f64], g: &[f64]| {
                    for ((wi, vi), gi) in w.iter_mut().zip(v.iter_mut()).zip(g) {
                        *vi = params.momentum * *vi - scale * gi;
                        *wi += *vi;
                    }
                };
                step(&mut l1.w, &mut v1w, &g1w);
                step(&mut l1.b, &mut v1b, &g1b);
                step(&mut l2.w, &mut v2w, &g2w);
                step(&mut l2.b, &mut v2b, &g2b);
                step(&mut l3.w, &mut v3w, &g3w);
                step(&mut l3.b, &mut v3b, &g3b);
            }
        }

        Ok(Mlp { l1, l2, l3, n_features: d, n_classes: k })
    }

    /// Softmax class probabilities (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        let mut logits = Vec::new();
        let mut x = vec![0.0; self.n_features];
        let mut out = Vec::with_capacity(data.n_rows() * self.n_classes);
        for i in 0..data.n_rows() {
            data.read_row(i, &mut x);
            self.l1.forward(&x, &mut h1);
            relu_inplace(&mut h1);
            self.l2.forward(&h1, &mut h2);
            relu_inplace(&mut h2);
            self.l3.forward(&h2, &mut logits);
            crate::logistic::softmax(&mut logits);
            out.extend_from_slice(&logits);
        }
        Ok(out)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.n_classes))
    }
}

impl Layer {
    fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::push_usize;
        push_usize(out, self.n_in);
        push_usize(out, self.n_out);
        crate::codec::push_f64_vec(out, &self.w);
        crate::codec::push_f64_vec(out, &self.b);
    }

    fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<Layer> {
        use cleanml_dataset::codec::take_usize;
        let n_in = take_usize(parts)?;
        let n_out = take_usize(parts)?;
        let w = crate::codec::take_f64_vec(parts)?;
        let b = crate::codec::take_f64_vec(parts)?;
        (w.len() == n_in.checked_mul(n_out)? && b.len() == n_out).then_some(Layer {
            w,
            b,
            n_in,
            n_out,
        })
    }
}

impl Mlp {
    /// Appends the three dense layers to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::push_usize;
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        self.l1.encode_into(out);
        self.l2.encode_into(out);
        self.l3.encode_into(out);
    }

    /// Reads a network written by [`Mlp::encode_into`].
    pub(crate) fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<Mlp> {
        use cleanml_dataset::codec::take_usize;
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let l1 = Layer::decode_from(parts)?;
        let l2 = Layer::decode_from(parts)?;
        let l3 = Layer::decode_from(parts)?;
        (l1.n_in == n_features
            && l2.n_in == l1.n_out
            && l3.n_in == l2.n_out
            && l3.n_out == n_classes)
            .then_some(Mlp { l1, l2, l3, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn xor_blobs(n: usize) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let qa = (i / 2) % 2;
            let qb = i % 2;
            let jitter = ((i * 53 % 97) as f64 / 97.0 - 0.5) * 0.4;
            data.push(qa as f64 * 2.0 - 1.0 + jitter);
            data.push(qb as f64 * 2.0 - 1.0 - jitter);
            labels.push(qa ^ qb);
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn learns_xor() {
        let data = xor_blobs(200);
        let mlp = Mlp::fit(&MlpParams::default(), &data, 7).unwrap();
        let preds = mlp.predict(&data).unwrap();
        assert!(accuracy(data.labels(), &preds) > 0.9, "acc too low");
    }

    #[test]
    fn probabilities_normalized() {
        let data = xor_blobs(50);
        let mlp = Mlp::fit(&MlpParams { epochs: 5, ..Default::default() }, &data, 0).unwrap();
        for row in mlp.predict_proba(&data).unwrap().chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let data = xor_blobs(40);
        let p = MlpParams { epochs: 3, ..Default::default() };
        let m1 = Mlp::fit(&p, &data, 11).unwrap();
        let m2 = Mlp::fit(&p, &data, 11).unwrap();
        assert_eq!(m1.predict_proba(&data).unwrap(), m2.predict_proba(&data).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let data = xor_blobs(10);
        assert!(Mlp::fit(&MlpParams { hidden1: 0, ..Default::default() }, &data, 0).is_err());
        assert!(Mlp::fit(&MlpParams { lr: 0.0, ..Default::default() }, &data, 0).is_err());
        assert!(Mlp::fit(&MlpParams { momentum: 1.5, ..Default::default() }, &data, 0).is_err());
        assert!(Mlp::fit(&MlpParams { epochs: 0, ..Default::default() }, &data, 0).is_err());
    }
}
