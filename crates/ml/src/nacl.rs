//! NaCL-style missing-feature-robust logistic regression.
//!
//! The paper's §VII-B compares cleaning against NaCL (Khosravi et al.),
//! a specialized logistic regression that reasons about missing features at
//! prediction time instead of requiring imputation. We reproduce the
//! *observable behaviour* — an LR whose accuracy degrades gracefully as
//! features go missing — with the closest classical equivalent:
//!
//! 1. **Training:** feature dropout. Each epoch every feature of every
//!    sample is independently zeroed with probability `dropout` and the
//!    survivors rescaled by `1/(1-dropout)`, so the learned weights cannot
//!    rely on any single feature being present.
//! 2. **Prediction:** missing features (flagged by the encoder's missingness
//!    mask) contribute their training-set expectation — which is exactly 0
//!    in standardized feature space — i.e. the model marginalizes them out
//!    under an independence assumption, NaCL's expected-prediction view.
//!
//! The substitution is documented in `DESIGN.md` §4.

use cleanml_dataset::FeatureMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::MlError;
use crate::logistic::{argmax_rows, softmax};
use crate::Result;

/// Hyper-parameters for [`Nacl`].
#[derive(Debug, Clone, PartialEq)]
pub struct NaclParams {
    /// Per-feature dropout probability during training.
    pub dropout: f64,
    /// L2 penalty weight.
    pub l2: f64,
    /// Initial learning rate.
    pub lr: f64,
    /// Full-batch epochs.
    pub epochs: usize,
}

impl Default for NaclParams {
    fn default() -> Self {
        NaclParams { dropout: 0.25, l2: 1e-3, lr: 0.5, epochs: 120 }
    }
}

impl NaclParams {
    /// Samples hyper-parameters for random search.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        NaclParams {
            dropout: rng.random_range(0.1..0.4),
            l2: 10f64.powf(rng.random_range(-5.0..0.0)),
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(MlError::InvalidParam {
                param: "dropout",
                message: format!("{}", self.dropout),
            });
        }
        if self.l2.is_nan() || self.l2 < 0.0 {
            return Err(MlError::InvalidParam { param: "l2", message: format!("{}", self.l2) });
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidParam { param: "epochs", message: "0".into() });
        }
        Ok(())
    }
}

/// A fitted dropout-robust logistic regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Nacl {
    weights: Vec<f64>,
    bias: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl Nacl {
    /// Trains with feature dropout.
    pub fn fit(params: &NaclParams, data: &FeatureMatrix, seed: u64) -> Result<Nacl> {
        params.validate()?;
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let d = data.n_cols();
        let k = data.n_classes();
        let mut rng = StdRng::seed_from_u64(seed);
        let keep_scale = 1.0 / (1.0 - params.dropout);

        let mut weights = vec![0.0; k * d];
        let mut bias = vec![0.0; k];
        let mut probs = vec![0.0; k];
        let mut grad_w = vec![0.0; k * d];
        let mut grad_b = vec![0.0; k];
        let mut xd = vec![0.0; d];

        for epoch in 0..params.epochs {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            grad_b.iter_mut().for_each(|g| *g = 0.0);

            for i in 0..n {
                // Apply dropout mask for this (epoch, sample). The loop stays
                // row-outer with ascending features so the RNG stream is
                // consumed in exactly the same order as before the columnar
                // layout change.
                for (j, xdj) in xd.iter_mut().enumerate() {
                    *xdj = if rng.random::<f64>() < params.dropout {
                        0.0
                    } else {
                        data.at(i, j) * keep_scale
                    };
                }
                for c in 0..k {
                    let w = &weights[c * d..(c + 1) * d];
                    probs[c] = bias[c] + w.iter().zip(&xd).map(|(a, b)| a * b).sum::<f64>();
                }
                softmax(&mut probs);
                let y = data.labels()[i];
                for c in 0..k {
                    let err = probs[c] - if c == y { 1.0 } else { 0.0 };
                    let g = &mut grad_w[c * d..(c + 1) * d];
                    for (gj, xj) in g.iter_mut().zip(&xd) {
                        *gj += err * xj;
                    }
                    grad_b[c] += err;
                }
            }

            let lr = params.lr / (1.0 + epoch as f64 / 50.0);
            let scale = lr / n as f64;
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= scale * g + lr * params.l2 * *w;
            }
            for (b, g) in bias.iter_mut().zip(&grad_b) {
                *b -= scale * g;
            }
        }

        Ok(Nacl { weights, bias, n_features: d, n_classes: k })
    }

    /// Class probabilities; features flagged missing in the matrix are
    /// marginalized (contribute zero in standardized space).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let d = self.n_features;
        let k = self.n_classes;
        let mut out = vec![0.0; data.n_rows() * k];
        let mut x = vec![0.0; d];
        let mut miss = vec![false; d];
        for i in 0..data.n_rows() {
            data.read_row(i, &mut x);
            for (j, m) in miss.iter_mut().enumerate() {
                *m = data.missing_at(i, j);
            }
            let row = &mut out[i * k..(i + 1) * k];
            for (c, out_c) in row.iter_mut().enumerate() {
                let w = &self.weights[c * d..(c + 1) * d];
                let mut z = self.bias[c];
                for j in 0..d {
                    if !miss[j] {
                        z += w[j] * x[j];
                    }
                }
                *out_c = z;
            }
            softmax(row);
        }
        Ok(out)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(argmax_rows(&probs, self.n_classes))
    }
}

impl Nacl {
    /// Appends the fitted weights to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::push_usize;
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        crate::codec::push_f64_vec(out, &self.weights);
        crate::codec::push_f64_vec(out, &self.bias);
    }

    /// Reads a model written by [`Nacl::encode_into`].
    pub(crate) fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<Nacl> {
        use cleanml_dataset::codec::take_usize;
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let weights = crate::codec::take_f64_vec(parts)?;
        let bias = crate::codec::take_f64_vec(parts)?;
        (weights.len() == n_classes.checked_mul(n_features)? && bias.len() == n_classes)
            .then_some(Nacl { weights, bias, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn redundant_blobs(n: usize) -> FeatureMatrix {
        // Four redundant informative features so the label stays predictable
        // when some go missing.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -1.0 } else { 1.0 };
            for f in 0..4 {
                let noise = ((i * (f + 3) * 29 % 101) as f64 / 101.0 - 0.5) * 0.6;
                data.push(base + noise);
            }
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 4, labels, 2)
    }

    #[test]
    fn learns_and_predicts() {
        let data = redundant_blobs(120);
        let model = Nacl::fit(&NaclParams::default(), &data, 3).unwrap();
        let preds = model.predict(&data).unwrap();
        assert!(accuracy(data.labels(), &preds) > 0.9);
    }

    #[test]
    fn probabilities_normalized() {
        let data = redundant_blobs(40);
        let model = Nacl::fit(&NaclParams { epochs: 10, ..Default::default() }, &data, 0).unwrap();
        for row in model.predict_proba(&data).unwrap().chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let data = redundant_blobs(30);
        let p = NaclParams { epochs: 5, ..Default::default() };
        let m1 = Nacl::fit(&p, &data, 5).unwrap();
        let m2 = Nacl::fit(&p, &data, 5).unwrap();
        assert_eq!(m1.predict_proba(&data).unwrap(), m2.predict_proba(&data).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let data = redundant_blobs(10);
        assert!(Nacl::fit(&NaclParams { dropout: 1.0, ..Default::default() }, &data, 0).is_err());
        assert!(Nacl::fit(&NaclParams { dropout: -0.1, ..Default::default() }, &data, 0).is_err());
        assert!(Nacl::fit(&NaclParams { l2: -1.0, ..Default::default() }, &data, 0).is_err());
        assert!(Nacl::fit(&NaclParams { epochs: 0, ..Default::default() }, &data, 0).is_err());
    }
}
