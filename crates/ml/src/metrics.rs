//! Classification metrics.
//!
//! CleanML scores every experiment with **accuracy**, switching to **F1**
//! on class-imbalanced datasets (paper §IV-A step 4). F1 is computed for a
//! designated positive class — in the study harness this is the minority
//! class of the full dataset, matching the convention of scoring the rare
//! event in imbalanced problems (e.g. default in the Credit dataset).

/// Fraction of predictions equal to the true label.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert!(!y_true.is_empty(), "empty evaluation set");
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// `n_classes × n_classes` confusion matrix `m[true][pred]`.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t][p] += 1;
    }
    m
}

/// Precision / recall / F1 for one class treated as positive.
/// All three are 0.0 when undefined (no predicted / no actual positives),
/// matching scikit-learn's `zero_division=0`.
pub fn precision_recall_f1(y_true: &[usize], y_pred: &[usize], positive: usize) -> (f64, f64, f64) {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        match (t == positive, p == positive) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 };
    let recall = if tp + fn_ > 0 { tp as f64 / (tp + fn_) as f64 } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

/// F1 score of the designated positive class.
pub fn f1_binary(y_true: &[usize], y_pred: &[usize], positive: usize) -> f64 {
    precision_recall_f1(y_true, y_pred, positive).2
}

/// Unweighted mean of per-class F1 scores.
pub fn macro_f1(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    assert!(n_classes > 0, "need at least one class");
    let sum: f64 = (0..n_classes).map(|c| precision_recall_f1(y_true, y_pred, c).2).sum();
    sum / n_classes as f64
}

/// The scoring rule used by an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain classification accuracy.
    Accuracy,
    /// F1 of the given positive class (used for imbalanced datasets).
    F1 { positive: usize },
}

impl Metric {
    /// Scores predictions against ground truth.
    pub fn score(self, y_true: &[usize], y_pred: &[usize]) -> f64 {
        match self {
            Metric::Accuracy => accuracy(y_true, y_pred),
            Metric::F1 { positive } => f1_binary(y_true, y_pred, positive),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Accuracy => "accuracy",
            Metric::F1 { .. } => "f1",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_checked() {
        accuracy(&[0, 1], &[0]);
    }

    #[test]
    fn confusion() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
    }

    #[test]
    fn prf_hand_example() {
        // positives: true = {0,1}, pred = {1,2} -> tp=1, fp=1, fn=1
        let y_true = [1, 1, 0, 0];
        let y_pred = [0, 1, 1, 0];
        let (p, r, f1) = precision_recall_f1(&y_true, &y_pred, 1);
        assert_eq!(p, 0.5);
        assert_eq!(r, 0.5);
        assert_eq!(f1, 0.5);
    }

    #[test]
    fn f1_undefined_cases() {
        // no predicted positives
        assert_eq!(f1_binary(&[1, 0], &[0, 0], 1), 0.0);
        // no actual positives
        assert_eq!(f1_binary(&[0, 0], &[1, 1], 1), 0.0);
        // perfect
        assert_eq!(f1_binary(&[1, 0, 1], &[1, 0, 1], 1), 1.0);
    }

    #[test]
    fn macro_f1_averages() {
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 0, 1, 0];
        let f0 = f1_binary(&y_true, &y_pred, 0);
        let f1c = f1_binary(&y_true, &y_pred, 1);
        assert!((macro_f1(&y_true, &y_pred, 2) - (f0 + f1c) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn metric_dispatch() {
        let y_true = [0, 1, 1, 0];
        let y_pred = [0, 1, 0, 0];
        assert_eq!(Metric::Accuracy.score(&y_true, &y_pred), 0.75);
        assert_eq!(
            Metric::F1 { positive: 1 }.score(&y_true, &y_pred),
            f1_binary(&y_true, &y_pred, 1)
        );
        assert_eq!(Metric::Accuracy.name(), "accuracy");
    }
}
