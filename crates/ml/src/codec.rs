//! Lossless token codecs for every fitted model variant.
//!
//! The engine's artifact store persists `Train` results on disk so an
//! interrupted study never retrains a finished model. Each
//! [`FittedModel`] variant serializes through the whitespace-token
//! primitives of [`cleanml_dataset::codec`]: floats as IEEE-754 bit
//! patterns (decode is bit-identical, so a resumed run reproduces the exact
//! predictions of the original), vectors length-prefixed (truncation
//! decodes to `None`, never to a plausible-but-wrong model).
//!
//! The per-variant field codecs live next to their structs (e.g.
//! [`crate::tree`] encodes its own node arena); this module owns the
//! variant tag dispatch.

use cleanml_dataset::codec::{push_f64, push_usize, take_f64, take_usize, Tokens};

use crate::adaboost::AdaBoost;
use crate::forest::RandomForest;
use crate::gbdt::Gbdt;
use crate::knn::Knn;
use crate::logistic::Logistic;
use crate::mlp::Mlp;
use crate::model::FittedModel;
use crate::nacl::Nacl;
use crate::naive_bayes::GaussianNb;
use crate::tree::DecisionTree;

/// Appends a length-prefixed `f64` slice.
pub(crate) fn push_f64_vec(out: &mut String, v: &[f64]) {
    push_usize(out, v.len());
    for &x in v {
        push_f64(out, x);
    }
}

/// Reads a slice written by [`push_f64_vec`].
pub(crate) fn take_f64_vec(parts: &mut Tokens<'_>) -> Option<Vec<f64>> {
    let n = take_usize(parts)?;
    let mut v = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        v.push(take_f64(parts)?);
    }
    Some(v)
}

/// Appends a fitted model (variant tag + fields) to the token stream.
pub fn encode_model_into(out: &mut String, model: &FittedModel) {
    match model {
        FittedModel::Constant { class, n_classes } => {
            out.push_str(" const");
            push_usize(out, *class);
            push_usize(out, *n_classes);
        }
        FittedModel::Logistic(m) => {
            out.push_str(" logit");
            m.encode_into(out);
        }
        FittedModel::Knn(m) => {
            out.push_str(" knn");
            m.encode_into(out);
        }
        FittedModel::Tree(m) => {
            out.push_str(" tree");
            m.encode_into(out);
        }
        FittedModel::Forest(m) => {
            out.push_str(" forest");
            m.encode_into(out);
        }
        FittedModel::AdaBoost(m) => {
            out.push_str(" ada");
            m.encode_into(out);
        }
        FittedModel::Gbdt(m) => {
            out.push_str(" gbdt");
            m.encode_into(out);
        }
        FittedModel::NaiveBayes(m) => {
            out.push_str(" nb");
            m.encode_into(out);
        }
        FittedModel::Mlp(m) => {
            out.push_str(" mlp");
            m.encode_into(out);
        }
        FittedModel::Nacl(m) => {
            out.push_str(" nacl");
            m.encode_into(out);
        }
    }
}

/// Reads a model written by [`encode_model_into`]; `None` on an unknown tag
/// or any malformed field.
pub fn decode_model_from(parts: &mut Tokens<'_>) -> Option<FittedModel> {
    Some(match parts.next()? {
        "const" => {
            let class = take_usize(parts)?;
            let n_classes = take_usize(parts)?;
            if class >= n_classes.max(1) {
                return None;
            }
            FittedModel::Constant { class, n_classes }
        }
        "logit" => FittedModel::Logistic(Logistic::decode_from(parts)?),
        "knn" => FittedModel::Knn(Knn::decode_from(parts)?),
        "tree" => FittedModel::Tree(DecisionTree::decode_from(parts)?),
        "forest" => FittedModel::Forest(RandomForest::decode_from(parts)?),
        "ada" => FittedModel::AdaBoost(AdaBoost::decode_from(parts)?),
        "gbdt" => FittedModel::Gbdt(Gbdt::decode_from(parts)?),
        "nb" => FittedModel::NaiveBayes(GaussianNb::decode_from(parts)?),
        "mlp" => FittedModel::Mlp(Mlp::decode_from(parts)?),
        "nacl" => FittedModel::Nacl(Nacl::decode_from(parts)?),
        _ => return None,
    })
}

/// Serializes a fitted model to one self-contained string.
pub fn encode_model(model: &FittedModel) -> String {
    let mut out = String::new();
    encode_model_into(&mut out, model);
    out
}

/// Parses a string produced by [`encode_model`].
pub fn decode_model(text: &str) -> Option<FittedModel> {
    let mut parts = text.split_whitespace();
    let model = decode_model_from(&mut parts)?;
    parts.next().is_none().then_some(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelKind, ModelSpec, PAPER_MODELS};
    use cleanml_dataset::FeatureMatrix;

    fn blobs(n: usize) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 31 % 67) as f64 / 67.0 - 0.5) * 0.8;
            data.push(base + noise);
            data.push(base - noise);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn every_variant_round_trips_bit_exactly() {
        let data = blobs(60);
        let mut kinds: Vec<ModelKind> = PAPER_MODELS.to_vec();
        kinds.extend([ModelKind::Mlp, ModelKind::Nacl]);
        for kind in kinds {
            let model = ModelSpec::default_for(kind).fit(&data, 7).unwrap();
            let text = encode_model(&model);
            let back = decode_model(&text)
                .unwrap_or_else(|| panic!("{kind}: decode failed for {text:.60}…"));
            assert_eq!(back, model, "{kind}");
            // decoded model predicts identically
            assert_eq!(back.predict(&data).unwrap(), model.predict(&data).unwrap(), "{kind}");
            assert_eq!(
                back.predict_proba(&data).unwrap(),
                model.predict_proba(&data).unwrap(),
                "{kind}"
            );
        }
    }

    #[test]
    fn constant_round_trips() {
        let m = FittedModel::Constant { class: 1, n_classes: 3 };
        assert_eq!(decode_model(&encode_model(&m)), Some(m));
        assert!(decode_model("const 5 2").is_none(), "class out of range");
    }

    #[test]
    fn malformed_streams_rejected() {
        assert!(decode_model("").is_none());
        assert!(decode_model("alien 1 2").is_none());
        assert!(decode_model("logit 2").is_none(), "truncated");
        let data = blobs(20);
        let model = ModelSpec::default_for(ModelKind::DecisionTree).fit(&data, 1).unwrap();
        let text = encode_model(&model);
        assert!(decode_model(&format!("{text} extra")).is_none(), "trailing tokens");
        let cut = &text[..text.len() - 18];
        assert!(decode_model(cut).is_none(), "truncated tree");
    }

    #[test]
    fn cyclic_tree_arenas_rejected() {
        // A token-valid but cyclic arena (node 1 pointing back at node 0)
        // must decode to None — accepting it would hang prediction.
        let zeros = format!(" 2 {0} {0}", "0000000000000000");
        let cycle =
            format!("tree 2 2 3 S 0 3ff0000000000000 1 2 S 1 3ff0000000000000 0 2 L{zeros}");
        assert!(decode_model(&cycle).is_none(), "back-edge split accepted");
        // self-loop at the root
        let self_loop = format!("tree 2 2 2 S 0 3ff0000000000000 0 1 L{zeros}");
        assert!(decode_model(&self_loop).is_none(), "self-loop accepted");
    }
}
