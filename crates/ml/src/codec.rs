//! Binary codecs for every fitted model variant.
//!
//! The engine's artifact store persists `Train` results on disk so an
//! interrupted study never retrains a finished model. Each
//! [`FittedModel`] variant serializes through the binary wire primitives
//! of [`cleanml_dataset::codec`]: floats as raw IEEE-754 bit patterns
//! (decode is bit-identical, so a resumed run reproduces the exact
//! predictions of the original), vectors length-prefixed with bounded
//! decode allocations (truncation decodes to `None`, never to a
//! plausible-but-wrong model).
//!
//! The per-variant field codecs live next to their structs (e.g.
//! [`crate::tree`] encodes its own node arena); this module owns the
//! variant tag dispatch.

use cleanml_dataset::codec::{
    push_f64, push_f64_compact, push_tag, push_usize, take_f64, take_f64_compact, take_tag,
    take_usize, Reader,
};

use crate::adaboost::AdaBoost;
use crate::forest::RandomForest;
use crate::gbdt::Gbdt;
use crate::knn::Knn;
use crate::logistic::Logistic;
use crate::mlp::Mlp;
use crate::model::FittedModel;
use crate::nacl::Nacl;
use crate::naive_bayes::GaussianNb;
use crate::tree::DecisionTree;

/// Appends a length-prefixed `f64` slice of dense learned values (weights,
/// biases, Gaussians): raw 8-byte patterns, since gradient-descent output
/// is essentially never exactly 0/1 and the compact tag would only add a
/// byte per element.
pub(crate) fn push_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    push_usize(out, v.len());
    for &x in v {
        push_f64(out, x);
    }
}

/// Reads a slice written by [`push_f64_vec`]; the allocation is bounded by
/// the bytes actually present, so a corrupt length is a clean `None`.
/// Values round-trip the full f64 domain — models trained on tables with
/// non-finite cells persist non-finite parameters, and an artifact that
/// encodes but never decodes would silently defeat the warm cache.
pub(crate) fn take_f64_vec(parts: &mut Reader<'_>) -> Option<Vec<f64>> {
    let n = take_usize(parts)?;
    if n.checked_mul(8)? > parts.remaining() {
        return None;
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(take_f64(parts)?);
    }
    Some(v)
}

/// Like [`push_f64_vec`], but in the compact 0/1 form — for class
/// *distributions* (tree and forest leaves are overwhelmingly pure, so
/// most elements are exact 0.0 or 1.0 and cost one byte).
pub(crate) fn push_dist_vec(out: &mut Vec<u8>, v: &[f64]) {
    push_usize(out, v.len());
    for &x in v {
        push_f64_compact(out, x);
    }
}

/// Reads a slice written by [`push_dist_vec`]; each element is at least
/// one byte, bounding the allocation.
pub(crate) fn take_dist_vec(parts: &mut Reader<'_>) -> Option<Vec<f64>> {
    let n = take_usize(parts)?;
    if n > parts.remaining() {
        return None;
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(take_f64_compact(parts)?);
    }
    Some(v)
}

/// Appends a fitted model (variant tag byte + fields) to the byte stream.
pub fn encode_model_into(out: &mut Vec<u8>, model: &FittedModel) {
    match model {
        FittedModel::Constant { class, n_classes } => {
            push_tag(out, b'c');
            push_usize(out, *class);
            push_usize(out, *n_classes);
        }
        FittedModel::Logistic(m) => {
            push_tag(out, b'l');
            m.encode_into(out);
        }
        FittedModel::Knn(m) => {
            push_tag(out, b'k');
            m.encode_into(out);
        }
        FittedModel::Tree(m) => {
            push_tag(out, b't');
            m.encode_into(out);
        }
        FittedModel::Forest(m) => {
            push_tag(out, b'f');
            m.encode_into(out);
        }
        FittedModel::AdaBoost(m) => {
            push_tag(out, b'a');
            m.encode_into(out);
        }
        FittedModel::Gbdt(m) => {
            push_tag(out, b'g');
            m.encode_into(out);
        }
        FittedModel::NaiveBayes(m) => {
            push_tag(out, b'n');
            m.encode_into(out);
        }
        FittedModel::Mlp(m) => {
            push_tag(out, b'm');
            m.encode_into(out);
        }
        FittedModel::Nacl(m) => {
            push_tag(out, b'z');
            m.encode_into(out);
        }
    }
}

/// Reads a model written by [`encode_model_into`]; `None` on an unknown tag
/// or any malformed field.
pub fn decode_model_from(parts: &mut Reader<'_>) -> Option<FittedModel> {
    Some(match take_tag(parts)? {
        b'c' => {
            let class = take_usize(parts)?;
            let n_classes = take_usize(parts)?;
            if class >= n_classes.max(1) {
                return None;
            }
            FittedModel::Constant { class, n_classes }
        }
        b'l' => FittedModel::Logistic(Logistic::decode_from(parts)?),
        b'k' => FittedModel::Knn(Knn::decode_from(parts)?),
        b't' => FittedModel::Tree(DecisionTree::decode_from(parts)?),
        b'f' => FittedModel::Forest(RandomForest::decode_from(parts)?),
        b'a' => FittedModel::AdaBoost(AdaBoost::decode_from(parts)?),
        b'g' => FittedModel::Gbdt(Gbdt::decode_from(parts)?),
        b'n' => FittedModel::NaiveBayes(GaussianNb::decode_from(parts)?),
        b'm' => FittedModel::Mlp(Mlp::decode_from(parts)?),
        b'z' => FittedModel::Nacl(Nacl::decode_from(parts)?),
        _ => return None,
    })
}

/// Serializes a fitted model to one self-contained byte buffer.
pub fn encode_model(model: &FittedModel) -> Vec<u8> {
    let mut out = Vec::new();
    encode_model_into(&mut out, model);
    out
}

/// Parses a buffer produced by [`encode_model`]; trailing bytes are
/// rejected.
pub fn decode_model(bytes: &[u8]) -> Option<FittedModel> {
    let mut parts = Reader::new(bytes);
    let model = decode_model_from(&mut parts)?;
    parts.is_empty().then_some(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelKind, ModelSpec, PAPER_MODELS};
    use cleanml_dataset::FeatureMatrix;

    fn blobs(n: usize) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 31 % 67) as f64 / 67.0 - 0.5) * 0.8;
            data.push(base + noise);
            data.push(base - noise);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn every_variant_round_trips_bit_exactly() {
        let data = blobs(60);
        let mut kinds: Vec<ModelKind> = PAPER_MODELS.to_vec();
        kinds.extend([ModelKind::Mlp, ModelKind::Nacl]);
        for kind in kinds {
            let model = ModelSpec::default_for(kind).fit(&data, 7).unwrap();
            let bytes = encode_model(&model);
            let back = decode_model(&bytes)
                .unwrap_or_else(|| panic!("{kind}: decode failed for {} bytes", bytes.len()));
            assert_eq!(back, model, "{kind}");
            // decoded model predicts identically
            assert_eq!(back.predict(&data).unwrap(), model.predict(&data).unwrap(), "{kind}");
            assert_eq!(
                back.predict_proba(&data).unwrap(),
                model.predict_proba(&data).unwrap(),
                "{kind}"
            );
        }
    }

    #[test]
    fn constant_round_trips() {
        let m = FittedModel::Constant { class: 1, n_classes: 3 };
        assert_eq!(decode_model(&encode_model(&m)), Some(m));
        let out_of_range = encode_model(&FittedModel::Constant { class: 5, n_classes: 2 });
        assert!(decode_model(&out_of_range).is_none(), "class out of range");
    }

    #[test]
    fn malformed_streams_rejected() {
        assert!(decode_model(b"").is_none());
        assert!(decode_model(b"Q\x01\x02").is_none(), "unknown variant tag");
        assert!(decode_model(b"l\x02").is_none(), "truncated");
        let data = blobs(20);
        let model = ModelSpec::default_for(ModelKind::DecisionTree).fit(&data, 1).unwrap();
        let bytes = encode_model(&model);
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_model(&long).is_none(), "trailing bytes");
        for cut in 0..bytes.len() {
            assert!(decode_model(&bytes[..cut]).is_none(), "truncated tree at {cut}");
        }
    }

    #[test]
    fn cyclic_tree_arenas_rejected() {
        use cleanml_dataset::codec::{push_f64, push_tag, push_usize};
        // A structurally valid but cyclic arena (node 1 pointing back at
        // node 0) must decode to None — accepting it would hang prediction.
        let leaf = |out: &mut Vec<u8>| {
            push_tag(out, b'L');
            push_usize(out, 2); // dist len
            push_f64_compact(out, 0.0);
            push_f64_compact(out, 0.0);
        };
        let split = |out: &mut Vec<u8>, feature: usize, left: usize, right: usize| {
            push_tag(out, b'S');
            push_usize(out, feature);
            push_f64(out, 1.0);
            push_usize(out, left);
            push_usize(out, right);
        };
        let mut cycle = Vec::new();
        push_tag(&mut cycle, b't'); // FittedModel::Tree
        push_usize(&mut cycle, 2); // n_features
        push_usize(&mut cycle, 2); // n_classes
        push_usize(&mut cycle, 3); // n_nodes
        split(&mut cycle, 0, 1, 2);
        split(&mut cycle, 1, 0, 2); // back-edge to node 0
        leaf(&mut cycle);
        assert!(decode_model(&cycle).is_none(), "back-edge split accepted");

        // self-loop at the root
        let mut self_loop = Vec::new();
        push_tag(&mut self_loop, b't');
        push_usize(&mut self_loop, 2);
        push_usize(&mut self_loop, 2);
        push_usize(&mut self_loop, 2);
        split(&mut self_loop, 0, 0, 1); // left child = itself
        leaf(&mut self_loop);
        assert!(decode_model(&self_loop).is_none(), "self-loop accepted");
    }
}
