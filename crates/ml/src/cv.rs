//! Cross-validation and random hyper-parameter search.
//!
//! The paper's protocol (§IV-A step 3): "We perform hyper-parameter tunings
//! using standard random search and 5-fold cross validation." [`SearchBudget`]
//! controls how faithful (and how expensive) that tuning is; the study
//! harness exposes quick/standard/full presets.

use cleanml_dataset::split::kfold_indices;
use cleanml_dataset::FeatureMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::MlError;
use crate::metrics::Metric;
use crate::model::{ModelKind, ModelSpec};
use crate::Result;

/// How much effort to spend on hyper-parameter search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Total candidate configurations evaluated (the first is always the
    /// family default; the rest are random samples). `1` disables search.
    pub n_candidates: usize,
    /// Cross-validation folds used to score each candidate.
    pub cv_folds: usize,
}

impl SearchBudget {
    /// No tuning: defaults scored by a single CV pass (cheapest option that
    /// still yields a validation score for model selection).
    pub fn none() -> Self {
        SearchBudget { n_candidates: 1, cv_folds: 3 }
    }

    /// Small random search (3 candidates, 3-fold CV).
    pub fn small() -> Self {
        SearchBudget { n_candidates: 3, cv_folds: 3 }
    }

    /// Paper-faithful search (random candidates, 5-fold CV).
    pub fn paper() -> Self {
        SearchBudget { n_candidates: 8, cv_folds: 5 }
    }
}

/// Outcome of a hyper-parameter search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best hyper-parameters found.
    pub spec: ModelSpec,
    /// Mean validation score of the best candidate.
    pub val_score: f64,
}

/// Mean validation score of `spec` over `k`-fold cross-validation.
///
/// Folds whose training partition is degenerate still train (via the
/// constant-model fallback), so the returned score is always defined.
pub fn cross_val_score(
    spec: &ModelSpec,
    data: &FeatureMatrix,
    k: usize,
    seed: u64,
    metric: Metric,
) -> Result<f64> {
    let n = data.n_rows();
    if n < 2 {
        return Err(MlError::TooFewRowsForCv { rows: n, folds: k });
    }
    let k = k.clamp(2, n);
    let folds = kfold_indices(n, k, seed);
    let mut total = 0.0;
    let mut used = 0usize;
    for (fold_id, (train_idx, val_idx)) in folds.iter().enumerate() {
        if train_idx.is_empty() || val_idx.is_empty() {
            continue;
        }
        let train = data.select_rows(train_idx);
        let val = data.select_rows(val_idx);
        let model = spec.fit(&train, seed.wrapping_add(fold_id as u64))?;
        let preds = model.predict(&val)?;
        total += metric.score(val.labels(), &preds);
        used += 1;
    }
    if used == 0 {
        return Err(MlError::TooFewRowsForCv { rows: n, folds: k });
    }
    Ok(total / used as f64)
}

/// Random hyper-parameter search for one model family.
///
/// Candidate 0 is the family default; candidates `1..n` are random samples.
/// Each is scored by [`cross_val_score`]; the best (ties → first seen, i.e.
/// the default wins exact ties) is returned.
pub fn random_search(
    kind: ModelKind,
    data: &FeatureMatrix,
    budget: SearchBudget,
    seed: u64,
    metric: Metric,
) -> Result<SearchResult> {
    let n_candidates = budget.n_candidates.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let mut best: Option<SearchResult> = None;
    for c in 0..n_candidates {
        let spec =
            if c == 0 { ModelSpec::default_for(kind) } else { ModelSpec::sample(kind, &mut rng) };
        let score = cross_val_score(&spec, data, budget.cv_folds, seed, metric)?;
        let better = match &best {
            None => true,
            Some(b) => score > b.val_score,
        };
        if better {
            best = Some(SearchResult { spec, val_score: score });
        }
    }
    Ok(best.expect("n_candidates >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 13 % 41) as f64 / 41.0 - 0.5) * 1.2;
            data.push(base + noise);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 1, labels, 2)
    }

    #[test]
    fn cv_score_reasonable_on_separable() {
        let data = blobs(60);
        let spec = ModelSpec::default_for(ModelKind::DecisionTree);
        let score = cross_val_score(&spec, &data, 5, 1, Metric::Accuracy).unwrap();
        assert!(score > 0.9, "score {score}");
    }

    #[test]
    fn cv_deterministic() {
        let data = blobs(40);
        let spec = ModelSpec::default_for(ModelKind::RandomForest);
        let s1 = cross_val_score(&spec, &data, 4, 9, Metric::Accuracy).unwrap();
        let s2 = cross_val_score(&spec, &data, 4, 9, Metric::Accuracy).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn cv_requires_rows() {
        let data = blobs(1);
        let spec = ModelSpec::default_for(ModelKind::Knn);
        assert!(matches!(
            cross_val_score(&spec, &data, 5, 0, Metric::Accuracy),
            Err(MlError::TooFewRowsForCv { .. })
        ));
    }

    #[test]
    fn cv_clamps_folds() {
        let data = blobs(4);
        let spec = ModelSpec::default_for(ModelKind::NaiveBayes);
        // 10 folds on 4 rows clamps to 4
        let score = cross_val_score(&spec, &data, 10, 0, Metric::Accuracy).unwrap();
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn search_returns_valid_spec() {
        let data = blobs(50);
        let r = random_search(
            ModelKind::DecisionTree,
            &data,
            SearchBudget::small(),
            3,
            Metric::Accuracy,
        )
        .unwrap();
        assert_eq!(r.spec.kind(), ModelKind::DecisionTree);
        assert!(r.val_score > 0.8);
    }

    #[test]
    fn search_no_tuning_is_default_spec() {
        let data = blobs(50);
        let r = random_search(ModelKind::Knn, &data, SearchBudget::none(), 3, Metric::Accuracy)
            .unwrap();
        assert_eq!(r.spec, ModelSpec::default_for(ModelKind::Knn));
    }

    #[test]
    fn search_deterministic() {
        let data = blobs(50);
        let go = || {
            random_search(ModelKind::XGBoost, &data, SearchBudget::small(), 11, Metric::Accuracy)
                .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.val_score, b.val_score);
    }

    #[test]
    fn f1_metric_usable() {
        let data = blobs(50);
        let spec = ModelSpec::default_for(ModelKind::LogisticRegression);
        let score = cross_val_score(&spec, &data, 3, 0, Metric::F1 { positive: 1 }).unwrap();
        assert!(score > 0.8);
    }
}
