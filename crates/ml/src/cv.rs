//! Cross-validation and random hyper-parameter search.
//!
//! The paper's protocol (§IV-A step 3): "We perform hyper-parameter tunings
//! using standard random search and 5-fold cross validation." [`SearchBudget`]
//! controls how faithful (and how expensive) that tuning is; the study
//! harness exposes quick/standard/full presets.
//!
//! ## The fold plane
//!
//! A [`FoldPlan`] is the CV grid's shared substrate: built once per
//! `(n_rows, k, seed)` key, it owns the fold index sets and materializes
//! each fold's train/val [`FeatureMatrix`] pair lazily, exactly once, behind
//! an `OnceLock`. Every candidate of a [`random_search`] — and every model
//! family of a `select_best_model` run sharing the key — scores against the
//! *same* `Arc`'d fold matrices, so their argsort sidecars
//! ([`FeatureMatrix::sorted_cols`] / `sorted_cols_chained`) are built once
//! per fold rather than once per candidate. The `(candidate, fold)` grid
//! fans out through [`cleanml_parallel::run_indexed`]; fit seeds depend only
//! on the fold index and candidate specs are pre-sampled serially from the
//! single RNG stream, so each grid cell is a pure function of its index and
//! the fixed-order reduction below keeps scores, tie-breaking and f64
//! accumulation byte-identical to the naive serial loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use cleanml_dataset::split::kfold_indices;
use cleanml_dataset::FeatureMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::MlError;
use crate::metrics::Metric;
use crate::model::{ModelKind, ModelSpec};
use crate::Result;

/// Process-wide count of candidate×fold model fits executed by CV scoring.
static CV_FITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of fold views served from an already-materialized
/// [`FoldPlan`] slot (a `select_rows` pair + sidecar rebuild avoided).
static FOLD_REUSE: AtomicU64 = AtomicU64::new(0);

/// Total CV model fits so far (see `cleanml_cv_fits_total` in the engine's
/// metrics registry, which bridges this counter).
pub fn cv_fits_total() -> u64 {
    CV_FITS.load(Ordering::Relaxed)
}

/// Total fold-view reuses so far (see `cleanml_fold_reuse_total`).
pub fn fold_reuse_total() -> u64 {
    FOLD_REUSE.load(Ordering::Relaxed)
}

/// One fold's index sets plus its lazily-built matrix views.
struct FoldSlot {
    train_idx: Vec<usize>,
    val_idx: Vec<usize>,
    /// `None` once built ⇒ the fold is degenerate (empty side) and is
    /// skipped by every consumer, exactly like the naive loop's `continue`.
    views: OnceLock<Option<(Arc<FeatureMatrix>, Arc<FeatureMatrix>)>>,
}

/// Shared fold materialization for one `(n_rows, k, seed)` CV key.
///
/// Construction computes only the fold *index* sets ([`kfold_indices`]);
/// the per-fold train/val matrices are gathered on first use and cached,
/// so all candidates (and, via `select_best_model`, all model families
/// sharing the key) score against one set of fold matrices whose argsort
/// sidecars are built once per fold.
pub struct FoldPlan<'a> {
    data: &'a FeatureMatrix,
    /// Folds actually used (requested `k` clamped to `[2, n_rows]`).
    k: usize,
    seed: u64,
    folds: Vec<FoldSlot>,
    /// Model fits scored through this plan (also aggregated process-wide
    /// into [`cv_fits_total`]).
    fits: AtomicU64,
    /// Fold views served from an already-built slot (also aggregated
    /// process-wide into [`fold_reuse_total`]).
    reuses: AtomicU64,
}

impl<'a> FoldPlan<'a> {
    /// Builds the plan for `k`-fold CV over `data` under `seed`. Errors —
    /// like [`cross_val_score`] always has — when `data` has under 2 rows.
    pub fn new(data: &'a FeatureMatrix, k: usize, seed: u64) -> Result<FoldPlan<'a>> {
        let n = data.n_rows();
        if n < 2 {
            return Err(MlError::TooFewRowsForCv { rows: n, folds: k });
        }
        let k = k.clamp(2, n);
        let folds = kfold_indices(n, k, seed)
            .into_iter()
            .map(|(train_idx, val_idx)| FoldSlot { train_idx, val_idx, views: OnceLock::new() })
            .collect();
        Ok(FoldPlan { data, k, seed, folds, fits: AtomicU64::new(0), reuses: AtomicU64::new(0) })
    }

    /// Model fits scored through this plan so far.
    pub fn fits(&self) -> u64 {
        self.fits.load(Ordering::Relaxed)
    }

    /// Fold views this plan served from an already-built slot.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Tallies one candidate×fold model fit (plan-local + process-wide).
    fn note_fit(&self) {
        self.fits.fetch_add(1, Ordering::Relaxed);
        CV_FITS.fetch_add(1, Ordering::Relaxed);
    }

    /// The full matrix the folds partition.
    pub fn data(&self) -> &FeatureMatrix {
        self.data
    }

    /// Folds in the plan (requested `k`, clamped).
    pub fn n_folds(&self) -> usize {
        self.folds.len()
    }

    /// The CV seed: fold shuffling uses it directly, fold `f` fits with
    /// `seed.wrapping_add(f)` — independent of the candidate index, which
    /// is what makes the `(candidate, fold)` grid embarrassingly parallel.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan serves a `(n_rows, k, seed)` CV request (the
    /// requested `k` is clamped the same way construction clamped it).
    pub fn matches(&self, data: &FeatureMatrix, k: usize, seed: u64) -> bool {
        std::ptr::eq(self.data, data)
            && self.seed == seed
            && self.k == k.clamp(2, data.n_rows().max(2))
    }

    /// The materialized `(train, val)` views of fold `fold_id`, building
    /// them on first use; `None` for degenerate folds. Thread-safe: under
    /// the parallel grid, concurrent first users block on the `OnceLock`
    /// while exactly one gathers the pair.
    pub fn fold(&self, fold_id: usize) -> Option<(&Arc<FeatureMatrix>, &Arc<FeatureMatrix>)> {
        let slot = &self.folds[fold_id];
        if let Some(built) = slot.views.get() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            FOLD_REUSE.fetch_add(1, Ordering::Relaxed);
            return built.as_ref().map(|(t, v)| (t, v));
        }
        slot.views
            .get_or_init(|| {
                if slot.train_idx.is_empty() || slot.val_idx.is_empty() {
                    return None;
                }
                let (train, val) = self.data.select_rows_pair(&slot.train_idx, &slot.val_idx);
                Some((Arc::new(train), Arc::new(val)))
            })
            .as_ref()
            .map(|(t, v)| (t, v))
    }

    /// The error every all-folds-degenerate consumer reports.
    fn no_usable_folds(&self) -> MlError {
        MlError::TooFewRowsForCv { rows: self.data.n_rows(), folds: self.k }
    }
}

/// How much effort to spend on hyper-parameter search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Total candidate configurations evaluated (the first is always the
    /// family default; the rest are random samples). `1` disables search.
    pub n_candidates: usize,
    /// Cross-validation folds used to score each candidate.
    pub cv_folds: usize,
}

impl SearchBudget {
    /// No tuning: defaults scored by a single CV pass (cheapest option that
    /// still yields a validation score for model selection).
    pub fn none() -> Self {
        SearchBudget { n_candidates: 1, cv_folds: 3 }
    }

    /// Small random search (3 candidates, 3-fold CV).
    pub fn small() -> Self {
        SearchBudget { n_candidates: 3, cv_folds: 3 }
    }

    /// Paper-faithful search (random candidates, 5-fold CV).
    pub fn paper() -> Self {
        SearchBudget { n_candidates: 8, cv_folds: 5 }
    }
}

/// Outcome of a hyper-parameter search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best hyper-parameters found.
    pub spec: ModelSpec,
    /// Mean validation score of the best candidate.
    pub val_score: f64,
}

/// Mean validation score of `spec` over `k`-fold cross-validation.
///
/// Folds whose training partition is degenerate still train (via the
/// constant-model fallback), so the returned score is always defined.
/// Thin wrapper: builds a single-use [`FoldPlan`] and defers to
/// [`cross_val_score_with_plan`].
pub fn cross_val_score(
    spec: &ModelSpec,
    data: &FeatureMatrix,
    k: usize,
    seed: u64,
    metric: Metric,
) -> Result<f64> {
    let plan = FoldPlan::new(data, k, seed)?;
    cross_val_score_with_plan(spec, &plan, metric)
}

/// [`cross_val_score`] against a caller-owned [`FoldPlan`]: same folds,
/// same fit seeds (`plan.seed() + fold_id`), same fold-order f64
/// accumulation — but the fold matrices come from the shared plan instead
/// of fresh `select_rows` gathers.
pub fn cross_val_score_with_plan(
    spec: &ModelSpec,
    plan: &FoldPlan<'_>,
    metric: Metric,
) -> Result<f64> {
    let mut total = 0.0;
    let mut used = 0usize;
    for fold_id in 0..plan.n_folds() {
        let Some((train, val)) = plan.fold(fold_id) else {
            continue;
        };
        let model = spec.fit(train, plan.seed().wrapping_add(fold_id as u64))?;
        plan.note_fit();
        let preds = model.predict(val)?;
        total += metric.score(val.labels(), &preds);
        used += 1;
    }
    if used == 0 {
        return Err(plan.no_usable_folds());
    }
    Ok(total / used as f64)
}

/// Random hyper-parameter search for one model family.
///
/// Candidate 0 is the family default; candidates `1..n` are random samples.
/// Each is scored by [`cross_val_score`]; the best (ties → first seen, i.e.
/// the default wins exact ties) is returned. Thin wrapper: builds a
/// single-search [`FoldPlan`] and defers to [`random_search_with_plan`],
/// so even standalone searches materialize each fold once, not once per
/// candidate.
pub fn random_search(
    kind: ModelKind,
    data: &FeatureMatrix,
    budget: SearchBudget,
    seed: u64,
    metric: Metric,
) -> Result<SearchResult> {
    let plan = FoldPlan::new(data, budget.cv_folds, seed)?;
    random_search_with_plan(kind, &plan, budget, seed, metric)
}

/// [`random_search`] against a caller-owned [`FoldPlan`] (`seed` is the
/// search seed: the candidate RNG stream is `seed ^ 0xC0FF_EE00`, exactly
/// as before; callers pass the same seed the plan was keyed with).
///
/// The `(candidate, fold)` grid runs through
/// [`cleanml_parallel::run_indexed`] — serial without a bridge, fanned to
/// idle pool workers under the engine — and is reduced in fixed
/// (candidate-major, fold-minor) order:
///
/// * candidate specs are sampled *serially* from the single RNG stream
///   before the fan-out, so spec sequences never depend on scheduling;
/// * a cell's fit seed is `plan.seed() + fold`, independent of the
///   candidate, so each cell is a pure function of its index;
/// * per-candidate scores accumulate in fold order and candidates compare
///   in sample order (`>` keeps the earliest on exact ties), byte-for-byte
///   the naive loop's arithmetic;
/// * on error, the first failing cell in grid order is reported, matching
///   the serial loop's early exit.
pub fn random_search_with_plan(
    kind: ModelKind,
    plan: &FoldPlan<'_>,
    budget: SearchBudget,
    seed: u64,
    metric: Metric,
) -> Result<SearchResult> {
    let n_candidates = budget.n_candidates.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let specs: Vec<ModelSpec> =
        (0..n_candidates)
            .map(|c| {
                if c == 0 {
                    ModelSpec::default_for(kind)
                } else {
                    ModelSpec::sample(kind, &mut rng)
                }
            })
            .collect();

    let k = plan.n_folds();
    let cells: Vec<Result<Option<f64>>> = cleanml_parallel::run_indexed(n_candidates * k, |idx| {
        let (c, fold_id) = (idx / k, idx % k);
        let Some((train, val)) = plan.fold(fold_id) else {
            return Ok(None);
        };
        let model = specs[c].fit(train, plan.seed().wrapping_add(fold_id as u64))?;
        plan.note_fit();
        let preds = model.predict(val)?;
        Ok(Some(metric.score(val.labels(), &preds)))
    });

    let mut best: Option<SearchResult> = None;
    let mut cells = cells.into_iter();
    for spec in specs {
        let mut total = 0.0;
        let mut used = 0usize;
        for _ in 0..k {
            match cells.next().expect("grid covers candidates × folds") {
                Ok(Some(score)) => {
                    total += score;
                    used += 1;
                }
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        if used == 0 {
            return Err(plan.no_usable_folds());
        }
        let score = total / used as f64;
        let better = match &best {
            None => true,
            Some(b) => score > b.val_score,
        };
        if better {
            best = Some(SearchResult { spec, val_score: score });
        }
    }
    Ok(best.expect("n_candidates >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 13 % 41) as f64 / 41.0 - 0.5) * 1.2;
            data.push(base + noise);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 1, labels, 2)
    }

    #[test]
    fn cv_score_reasonable_on_separable() {
        let data = blobs(60);
        let spec = ModelSpec::default_for(ModelKind::DecisionTree);
        let score = cross_val_score(&spec, &data, 5, 1, Metric::Accuracy).unwrap();
        assert!(score > 0.9, "score {score}");
    }

    #[test]
    fn cv_deterministic() {
        let data = blobs(40);
        let spec = ModelSpec::default_for(ModelKind::RandomForest);
        let s1 = cross_val_score(&spec, &data, 4, 9, Metric::Accuracy).unwrap();
        let s2 = cross_val_score(&spec, &data, 4, 9, Metric::Accuracy).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn cv_requires_rows() {
        let data = blobs(1);
        let spec = ModelSpec::default_for(ModelKind::Knn);
        assert!(matches!(
            cross_val_score(&spec, &data, 5, 0, Metric::Accuracy),
            Err(MlError::TooFewRowsForCv { .. })
        ));
    }

    #[test]
    fn cv_clamps_folds() {
        let data = blobs(4);
        let spec = ModelSpec::default_for(ModelKind::NaiveBayes);
        // 10 folds on 4 rows clamps to 4
        let score = cross_val_score(&spec, &data, 10, 0, Metric::Accuracy).unwrap();
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn search_returns_valid_spec() {
        let data = blobs(50);
        let r = random_search(
            ModelKind::DecisionTree,
            &data,
            SearchBudget::small(),
            3,
            Metric::Accuracy,
        )
        .unwrap();
        assert_eq!(r.spec.kind(), ModelKind::DecisionTree);
        assert!(r.val_score > 0.8);
    }

    #[test]
    fn search_no_tuning_is_default_spec() {
        let data = blobs(50);
        let r = random_search(ModelKind::Knn, &data, SearchBudget::none(), 3, Metric::Accuracy)
            .unwrap();
        assert_eq!(r.spec, ModelSpec::default_for(ModelKind::Knn));
    }

    #[test]
    fn search_deterministic() {
        let data = blobs(50);
        let go = || {
            random_search(ModelKind::XGBoost, &data, SearchBudget::small(), 11, Metric::Accuracy)
                .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.val_score, b.val_score);
    }

    #[test]
    fn f1_metric_usable() {
        let data = blobs(50);
        let spec = ModelSpec::default_for(ModelKind::LogisticRegression);
        let score = cross_val_score(&spec, &data, 3, 0, Metric::F1 { positive: 1 }).unwrap();
        assert!(score > 0.8);
    }

    #[test]
    fn plan_backed_cv_matches_naive_path() {
        // The naive path, spelled out exactly as the pre-plan code had it.
        fn naive_cv(
            spec: &ModelSpec,
            data: &FeatureMatrix,
            k: usize,
            seed: u64,
            metric: Metric,
        ) -> f64 {
            let k = k.clamp(2, data.n_rows());
            let folds = kfold_indices(data.n_rows(), k, seed);
            let mut total = 0.0;
            let mut used = 0usize;
            for (fold_id, (train_idx, val_idx)) in folds.iter().enumerate() {
                if train_idx.is_empty() || val_idx.is_empty() {
                    continue;
                }
                let train = data.select_rows(train_idx);
                let val = data.select_rows(val_idx);
                let model = spec.fit(&train, seed.wrapping_add(fold_id as u64)).unwrap();
                let preds = model.predict(&val).unwrap();
                total += metric.score(val.labels(), &preds);
                used += 1;
            }
            total / used as f64
        }
        let data = blobs(41);
        for kind in [ModelKind::DecisionTree, ModelKind::XGBoost, ModelKind::RandomForest] {
            let spec = ModelSpec::default_for(kind);
            for (k, seed) in [(3usize, 7u64), (5, 0), (40, 123)] {
                let plan = FoldPlan::new(&data, k, seed).unwrap();
                let planned = cross_val_score_with_plan(&spec, &plan, Metric::Accuracy).unwrap();
                let naive = naive_cv(&spec, &data, k, seed, Metric::Accuracy);
                assert!(
                    planned.to_bits() == naive.to_bits(),
                    "{kind} k={k} seed={seed}: {planned} vs {naive}"
                );
            }
        }
    }

    #[test]
    fn plan_materializes_each_fold_once_and_shares_arcs() {
        let data = blobs(30);
        let plan = FoldPlan::new(&data, 3, 9).unwrap();
        let (t0, v0) = plan.fold(0).expect("fold 0 usable");
        let (t0a, t0v) = (Arc::clone(t0), Arc::clone(v0));
        assert_eq!(plan.reuses(), 0, "first touch is a build, not a reuse");
        // every later touch hands back the same Arcs and counts as reuse
        let (t0b, v0b) = plan.fold(0).expect("fold 0 usable");
        assert!(Arc::ptr_eq(&t0a, t0b));
        assert!(Arc::ptr_eq(&t0v, v0b));
        assert_eq!(plan.reuses(), 1);
        // the nine sibling families of a selection run share those Arcs
        let nine = [
            ModelKind::LogisticRegression,
            ModelKind::Knn,
            ModelKind::DecisionTree,
            ModelKind::RandomForest,
            ModelKind::AdaBoost,
            ModelKind::XGBoost,
            ModelKind::NaiveBayes,
            ModelKind::Mlp,
            ModelKind::Nacl,
        ];
        let fits0 = plan.fits();
        let global0 = (cv_fits_total(), fold_reuse_total());
        for kind in nine {
            random_search_with_plan(kind, &plan, SearchBudget::none(), 9, Metric::Accuracy)
                .unwrap();
        }
        assert!(Arc::ptr_eq(&t0a, plan.fold(0).unwrap().0), "families did not re-materialize");
        assert_eq!(
            plan.fits() - fits0,
            9 * 3,
            "one fit per family per fold under SearchBudget::none()"
        );
        // the process-wide telemetry aggregates moved at least as much
        assert!(cv_fits_total() - global0.0 >= 9 * 3);
        assert!(fold_reuse_total() - global0.1 >= 9 * 3 - 1);
        assert!(plan.matches(&data, 3, 9));
        assert!(!plan.matches(&data, 4, 9));
        assert!(!plan.matches(&data, 3, 8));
    }

    #[test]
    fn multi_candidate_search_reuses_folds() {
        let data = blobs(36);
        let plan = FoldPlan::new(&data, 3, 5).unwrap();
        random_search_with_plan(
            ModelKind::DecisionTree,
            &plan,
            SearchBudget::small(),
            5,
            Metric::Accuracy,
        )
        .unwrap();
        assert_eq!(plan.fits(), 9, "3 candidates × 3 folds");
        // candidate 0 builds the 3 folds; candidates 1–2 reuse them
        assert_eq!(plan.reuses(), 6);
    }

    #[test]
    fn search_with_plan_matches_wrapper_under_thread_bridge() {
        let data = blobs(44);
        let serial = random_search(
            ModelKind::RandomForest,
            &data,
            SearchBudget::small(),
            17,
            Metric::Accuracy,
        )
        .unwrap();
        cleanml_parallel::install_bridge(std::sync::Arc::new(cleanml_parallel::ThreadBridge {
            helpers: 3,
        }));
        let parallel = random_search(
            ModelKind::RandomForest,
            &data,
            SearchBudget::small(),
            17,
            Metric::Accuracy,
        )
        .unwrap();
        cleanml_parallel::clear_bridge();
        assert_eq!(serial.spec, parallel.spec);
        assert_eq!(serial.val_score.to_bits(), parallel.val_score.to_bits());
    }

    #[test]
    fn plan_rejects_tiny_data_like_cv_did() {
        let data = blobs(1);
        assert!(matches!(
            FoldPlan::new(&data, 5, 0),
            Err(MlError::TooFewRowsForCv { rows: 1, folds: 5 })
        ));
    }
}
