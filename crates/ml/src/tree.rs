//! CART decision trees with Gini impurity and sample weights.
//!
//! The tree supports weighted samples (required by AdaBoost/SAMME) and
//! per-split random feature subsampling (required by random forests). Splits
//! are axis-aligned thresholds at midpoints between consecutive distinct
//! feature values, chosen to maximize the weighted Gini decrease — the
//! classic CART construction the paper's scikit-learn models use.

use cleanml_dataset::FeatureMatrix;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use crate::error::MlError;
use crate::Result;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0). `usize::MAX` effectively unbounded.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples each child must receive.
    pub min_samples_leaf: usize,
    /// Number of features considered per split; `None` = all features.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 12, min_samples_split: 2, min_samples_leaf: 1, max_features: None }
    }
}

impl TreeParams {
    /// Samples hyper-parameters for random search (depth and leaf-size sweep,
    /// mirroring the paper's scikit-learn random search space).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        TreeParams {
            max_depth: *[4usize, 6, 8, 12, 16].choose(rng).expect("non-empty"),
            min_samples_split: *[2usize, 4, 8].choose(rng).expect("non-empty"),
            min_samples_leaf: *[1usize, 2, 4].choose(rng).expect("non-empty"),
            max_features: None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidParam { param: "min_samples_leaf", message: "0".into() });
        }
        if self.min_samples_split < 2 {
            return Err(MlError::InvalidParam {
                param: "min_samples_split",
                message: format!("{} (must be >= 2)", self.min_samples_split),
            });
        }
        if self.max_features == Some(0) {
            return Err(MlError::InvalidParam { param: "max_features", message: "0".into() });
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Class probability distribution at the leaf (weighted).
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// `x[feature] <= threshold` goes left.
        left: usize,
        right: usize,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

/// Weighted Gini impurity of a class-weight histogram with total `total`.
fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|&c| (c / total) * (c / total)).sum::<f64>()
}

struct BuildCtx<'a> {
    data: &'a FeatureMatrix,
    weights: &'a [f64],
    params: &'a TreeParams,
    rng: StdRng,
    n_classes: usize,
}

impl DecisionTree {
    /// Trains with uniform sample weights.
    pub fn fit(params: &TreeParams, data: &FeatureMatrix, seed: u64) -> Result<DecisionTree> {
        let w = vec![1.0; data.n_rows()];
        Self::fit_weighted(params, data, &w, seed)
    }

    /// Trains with per-sample weights (AdaBoost) and optional per-split
    /// feature subsampling (random forest).
    pub fn fit_weighted(
        params: &TreeParams,
        data: &FeatureMatrix,
        weights: &[f64],
        seed: u64,
    ) -> Result<DecisionTree> {
        params.validate()?;
        if data.n_rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        assert_eq!(weights.len(), data.n_rows(), "weight count mismatch");

        let mut ctx = BuildCtx {
            data,
            weights,
            params,
            rng: StdRng::seed_from_u64(seed),
            n_classes: data.n_classes(),
        };
        let mut nodes = Vec::new();
        let all_rows: Vec<u32> = (0..data.n_rows() as u32).collect();
        // Root split candidates come straight from the matrix's sorted-index
        // sidecar; every descendant inherits order-preserving partitions of
        // these lists, so no node ever sorts.
        let lists: Vec<Vec<u32>> = data.sorted_cols().iter().cloned().collect();
        build_node(&mut ctx, &mut nodes, all_rows, lists, 0);
        Ok(DecisionTree { nodes, n_features: data.n_cols(), n_classes: data.n_classes() })
    }

    /// Per-class probabilities (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let k = self.n_classes;
        let mut out = Vec::with_capacity(data.n_rows() * k);
        for i in 0..data.n_rows() {
            let dist = self.leaf_dist_at(data, i);
            out.extend_from_slice(dist);
        }
        Ok(out)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.n_classes))
    }

    /// Number of nodes (diagnostics / tests).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Walks example `i` of a columnar matrix to its leaf.
    fn leaf_dist_at(&self, data: &FeatureMatrix, i: usize) -> &[f64] {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { dist } => return dist,
                Node::Split { feature, threshold, left, right } => {
                    at = if data.at(i, *feature) <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Recursively builds the subtree for `rows`, returning its node index.
///
/// `rows` is the node's membership in ascending-index order; `lists[f]`
/// holds the same membership in ascending `(value, row)` order for feature
/// `f`. Both invariants hold at the root (identity order / the matrix
/// sidecar) and are preserved by the order-stable partitions below, so the
/// threshold sweep visits candidates in exactly the order the pre-columnar
/// per-node stable sort produced — bit-identical splits.
fn build_node(
    ctx: &mut BuildCtx<'_>,
    nodes: &mut Vec<Node>,
    rows: Vec<u32>,
    lists: Vec<Vec<u32>>,
    depth: usize,
) -> usize {
    let k = ctx.n_classes;
    let mut counts = vec![0.0; k];
    let mut total = 0.0;
    for &r in &rows {
        counts[ctx.data.labels()[r as usize]] += ctx.weights[r as usize];
        total += ctx.weights[r as usize];
    }

    let make_leaf = |counts: &[f64], total: f64| {
        let dist: Vec<f64> = if total > 0.0 {
            counts.iter().map(|&c| c / total).collect()
        } else {
            vec![1.0 / k as f64; k]
        };
        Node::Leaf { dist }
    };

    let node_gini = gini(&counts, total);
    let stop = depth >= ctx.params.max_depth
        || rows.len() < ctx.params.min_samples_split
        || node_gini <= 1e-12;
    if stop {
        let idx = nodes.len();
        nodes.push(make_leaf(&counts, total));
        return idx;
    }

    let best = find_best_split(ctx, &lists, &counts, total, node_gini);
    let Some((feature, threshold)) = best else {
        let idx = nodes.len();
        nodes.push(make_leaf(&counts, total));
        return idx;
    };

    // Order-stable partitions: membership order is preserved in both
    // children, for the ascending row list and every per-feature list.
    let goes_left = |r: u32| ctx.data.at(r as usize, feature) <= threshold;
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
        rows.into_iter().partition(|&r| goes_left(r));
    let mut left_lists = Vec::with_capacity(lists.len());
    let mut right_lists = Vec::with_capacity(lists.len());
    for list in lists {
        let (l, r): (Vec<u32>, Vec<u32>) = list.into_iter().partition(|&r| goes_left(r));
        left_lists.push(l);
        right_lists.push(r);
    }

    // Reserve this node's slot before children so indices stay stable.
    let idx = nodes.len();
    nodes.push(Node::Leaf { dist: Vec::new() }); // placeholder
    let left = build_node(ctx, nodes, left_rows, left_lists, depth + 1);
    let right = build_node(ctx, nodes, right_rows, right_lists, depth + 1);
    nodes[idx] = Node::Split { feature, threshold, left, right };
    idx
}

/// Finds the `(feature, threshold)` with the largest weighted Gini decrease,
/// or `None` if no valid split exists. `lists[f]` is the node's membership
/// in ascending `(value, row)` order, so each feature is one contiguous
/// sweep — no per-node sorting.
fn find_best_split(
    ctx: &mut BuildCtx<'_>,
    lists: &[Vec<u32>],
    counts: &[f64],
    total: f64,
    node_gini: f64,
) -> Option<(usize, f64)> {
    let d = ctx.data.n_cols();
    let k = ctx.n_classes;

    let feature_pool: Vec<usize> = match ctx.params.max_features {
        Some(m) if m < d => {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(&mut ctx.rng);
            all.truncate(m);
            all
        }
        _ => (0..d).collect(),
    };

    let mut best: Option<(usize, f64)> = None;
    let mut best_gain = 1e-12; // require a strictly positive gain

    let mut left_counts = vec![0.0; k];

    for &f in &feature_pool {
        let order = &lists[f];
        let col = ctx.data.col(f);

        left_counts.iter_mut().for_each(|c| *c = 0.0);
        let mut left_total = 0.0;
        let mut left_n = 0usize;

        for w in 0..order.len() - 1 {
            let r = order[w] as usize;
            left_counts[ctx.data.labels()[r]] += ctx.weights[r];
            left_total += ctx.weights[r];
            left_n += 1;

            let v_here = col[r];
            let v_next = col[order[w + 1] as usize];
            if v_next <= v_here {
                continue; // can't split between equal values
            }
            let right_n = order.len() - left_n;
            if left_n < ctx.params.min_samples_leaf || right_n < ctx.params.min_samples_leaf {
                continue;
            }
            let right_total = total - left_total;
            let right_counts: Vec<f64> =
                counts.iter().zip(&left_counts).map(|(c, l)| c - l).collect();
            let weighted = (left_total * gini(&left_counts, left_total)
                + right_total * gini(&right_counts, right_total))
                / total;
            let gain = node_gini - weighted;
            if gain > best_gain {
                best_gain = gain;
                best = Some((f, 0.5 * (v_here + v_next)));
            }
        }
    }
    best
}

impl DecisionTree {
    /// Appends the node arena to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::{push_f64, push_tag, push_usize};
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        push_usize(out, self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { dist } => {
                    push_tag(out, b'L');
                    crate::codec::push_dist_vec(out, dist);
                }
                Node::Split { feature, threshold, left, right } => {
                    push_tag(out, b'S');
                    push_usize(out, *feature);
                    push_f64(out, *threshold);
                    push_usize(out, *left);
                    push_usize(out, *right);
                }
            }
        }
    }

    /// Reads a tree written by [`DecisionTree::encode_into`].
    pub(crate) fn decode_from(
        parts: &mut cleanml_dataset::codec::Reader<'_>,
    ) -> Option<DecisionTree> {
        use cleanml_dataset::codec::{take_f64, take_usize};
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let n_nodes = take_usize(parts)?;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20));
        for i in 0..n_nodes {
            let node = match cleanml_dataset::codec::take_tag(parts)? {
                b'L' => {
                    let dist = crate::codec::take_dist_vec(parts)?;
                    if dist.len() != n_classes {
                        return None;
                    }
                    Node::Leaf { dist }
                }
                b'S' => {
                    let feature = take_usize(parts)?;
                    let threshold = take_f64(parts)?;
                    let left = take_usize(parts)?;
                    let right = take_usize(parts)?;
                    // Children must point strictly forward in the arena
                    // (the builder reserves the parent slot before pushing
                    // children), so a corrupt entry can neither walk out
                    // of bounds nor form a cycle that hangs prediction.
                    if feature >= n_features
                        || left <= i
                        || right <= i
                        || left >= n_nodes
                        || right >= n_nodes
                    {
                        return None;
                    }
                    Node::Split { feature, threshold, left, right }
                }
                _ => return None,
            };
            nodes.push(node);
        }
        if nodes.is_empty() {
            return None;
        }
        Some(DecisionTree { nodes, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use cleanml_dataset::FeatureMatrix;

    fn xor_data() -> FeatureMatrix {
        // XOR-like pattern with *asymmetric* quadrant sizes. A perfectly
        // balanced XOR has zero Gini gain for any first split (both children
        // stay 50/50), so greedy CART cannot enter it; unequal quadrant
        // counts — as in any real dataset — restore a positive gain.
        let quadrants: [(f64, f64, usize, usize); 4] = [
            (0.0, 0.0, 0, 12), // (x0, x1, label, count)
            (0.0, 1.0, 1, 6),
            (1.0, 0.0, 1, 10),
            (1.0, 1.0, 0, 4),
        ];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut i = 0usize;
        for &(qx, qy, label, count) in &quadrants {
            for _ in 0..count {
                let jitter = (i as f64 * 0.17).sin() * 0.05;
                data.push(qx + jitter);
                data.push(qy - jitter);
                labels.push(label);
                i += 1;
            }
        }
        let n = labels.len();
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn learns_xor() {
        let data = xor_data();
        let tree = DecisionTree::fit(&TreeParams::default(), &data, 0).unwrap();
        let preds = tree.predict(&data).unwrap();
        assert_eq!(accuracy(data.labels(), &preds), 1.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_respected() {
        let data = xor_data();
        let tree = DecisionTree::fit(&TreeParams { max_depth: 1, ..Default::default() }, &data, 0)
            .unwrap();
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn stump_on_separable() {
        // Single threshold separates classes -> stump achieves 100%.
        let data = FeatureMatrix::from_parts(
            vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0],
            6,
            1,
            vec![0, 0, 0, 1, 1, 1],
            2,
        );
        let tree = DecisionTree::fit(&TreeParams { max_depth: 1, ..Default::default() }, &data, 0)
            .unwrap();
        let preds = tree.predict(&data).unwrap();
        assert_eq!(preds, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(tree.n_nodes(), 3);
    }

    #[test]
    fn pure_node_is_leaf() {
        let data = FeatureMatrix::from_parts(vec![1.0, 2.0, 3.0], 3, 1, vec![0, 0, 0], 2);
        let tree = DecisionTree::fit(&TreeParams::default(), &data, 0).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        let probs = tree.predict_proba(&data).unwrap();
        assert_eq!(&probs[..2], &[1.0, 0.0]);
    }

    #[test]
    fn weights_steer_the_split() {
        // Same feature values, conflicting labels; weights decide the leaf.
        let data = FeatureMatrix::from_parts(vec![0.0, 0.0], 2, 1, vec![0, 1], 2);
        let t = DecisionTree::fit_weighted(&TreeParams::default(), &data, &[0.9, 0.1], 0).unwrap();
        assert_eq!(t.predict(&data).unwrap(), vec![0, 0]);
        let t = DecisionTree::fit_weighted(&TreeParams::default(), &data, &[0.1, 0.9], 0).unwrap();
        assert_eq!(t.predict(&data).unwrap(), vec![1, 1]);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = FeatureMatrix::from_parts(vec![0.0, 1.0, 2.0, 3.0], 4, 1, vec![0, 0, 0, 1], 2);
        // Requiring 2 samples per leaf forbids isolating the single class-1 row
        // at threshold 2.5; the best legal split is at 1.5.
        let tree =
            DecisionTree::fit(&TreeParams { min_samples_leaf: 2, ..Default::default() }, &data, 0)
                .unwrap();
        let preds = tree.predict(&data).unwrap();
        assert_eq!(preds.len(), 4);
    }

    #[test]
    fn probabilities_are_distributions() {
        let data = xor_data();
        let tree = DecisionTree::fit(&TreeParams { max_depth: 1, ..Default::default() }, &data, 0)
            .unwrap();
        let probs = tree.predict_proba(&data).unwrap();
        for row in probs.chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn feature_subsampling_deterministic_by_seed() {
        let data = xor_data();
        let params = TreeParams { max_features: Some(1), ..Default::default() };
        let t1 = DecisionTree::fit(&params, &data, 5).unwrap();
        let t2 = DecisionTree::fit(&params, &data, 5).unwrap();
        let p1 = t1.predict(&data).unwrap();
        let p2 = t2.predict(&data).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn invalid_params_rejected() {
        let data = xor_data();
        assert!(DecisionTree::fit(
            &TreeParams { min_samples_leaf: 0, ..Default::default() },
            &data,
            0
        )
        .is_err());
        assert!(DecisionTree::fit(
            &TreeParams { min_samples_split: 1, ..Default::default() },
            &data,
            0
        )
        .is_err());
        assert!(DecisionTree::fit(
            &TreeParams { max_features: Some(0), ..Default::default() },
            &data,
            0
        )
        .is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = xor_data();
        let tree = DecisionTree::fit(&TreeParams::default(), &data, 0).unwrap();
        let other = FeatureMatrix::from_parts(vec![0.0; 3], 1, 3, vec![0], 2);
        assert!(tree.predict(&other).is_err());
    }
}
