//! Brute-force k-nearest-neighbours classification.
//!
//! KNN is the model the paper finds most sensitive to outliers (Table 12
//! Q3) because predictions depend directly on Euclidean distances, which a
//! single extreme value can dominate. The implementation is exact
//! brute-force search — CleanML datasets are small enough that an index
//! structure would only add noise to the comparison.

use cleanml_dataset::FeatureMatrix;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::error::MlError;
use crate::Result;

/// Hyper-parameters for [`Knn`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnParams {
    /// Number of neighbours consulted.
    pub k: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams { k: 5 }
    }
}

impl KnnParams {
    /// Samples hyper-parameters for random search (odd k, avoiding ties).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        KnnParams { k: *[3usize, 5, 7, 11, 15].choose(rng).expect("non-empty") }
    }
}

/// A fitted (memorized) KNN model.
#[derive(Debug, Clone, PartialEq)]
pub struct Knn {
    train: FeatureMatrix,
    k: usize,
}

impl Knn {
    /// Memorizes the training data.
    pub fn fit(params: &KnnParams, data: &FeatureMatrix) -> Result<Knn> {
        if params.k == 0 {
            return Err(MlError::InvalidParam { param: "k", message: "0".into() });
        }
        if data.n_rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        Ok(Knn { train: data.clone(), k: params.k.min(data.n_rows()) })
    }

    /// Vote fractions among the k nearest training rows (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.train.n_cols() {
            return Err(MlError::DimensionMismatch {
                expected: self.train.n_cols(),
                got: data.n_cols(),
            });
        }
        let n_train = self.train.n_rows();
        let classes = self.train.n_classes();
        let mut out = Vec::with_capacity(data.n_rows() * classes);

        // (distance², train index) scratch reused across queries, plus a
        // gather buffer for the query row (the train side is swept by
        // contiguous column stride; each d² accumulator still receives its
        // feature terms in ascending-`j` order).
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n_train);
        let mut q_row = vec![0.0; data.n_cols()];
        for q in 0..data.n_rows() {
            data.read_row(q, &mut q_row);
            dists.clear();
            dists.extend((0..n_train).map(|t| (0.0, t)));
            for (j, &a) in q_row.iter().enumerate() {
                let col = self.train.col(j);
                for (t, &b) in col.iter().enumerate() {
                    let d = a - b;
                    dists[t].0 += d * d;
                }
            }
            // Partial selection of the k smallest (ties broken by train index
            // for determinism).
            dists.select_nth_unstable_by(self.k - 1, |a, b| {
                a.0.partial_cmp(&b.0).expect("finite distances").then(a.1.cmp(&b.1))
            });
            let mut votes = vec![0.0; classes];
            for &(_, t) in &dists[..self.k] {
                votes[self.train.labels()[t]] += 1.0;
            }
            let total: f64 = votes.iter().sum();
            out.extend(votes.into_iter().map(|v| v / total));
        }
        Ok(out)
    }

    /// Majority vote per row (smallest class index wins ties via argmax
    /// scanning order).
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.train.n_classes()))
    }

    /// Effective k (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Knn {
    /// Appends the memorized training matrix and `k` to an artifact token
    /// stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        cleanml_dataset::codec::push_usize(out, self.k);
        self.train.encode_into(out);
    }

    /// Reads a model written by [`Knn::encode_into`].
    pub(crate) fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<Knn> {
        let k = cleanml_dataset::codec::take_usize(parts)?;
        let train = FeatureMatrix::decode_from(parts)?;
        (k >= 1 && k <= train.n_rows()).then_some(Knn { train, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn clusters() -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 10.0 };
            data.push(base + (i as f64 % 5.0) * 0.1);
            data.push(base - (i as f64 % 3.0) * 0.1);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, 30, 2, labels, 2)
    }

    #[test]
    fn classifies_clusters() {
        let data = clusters();
        let knn = Knn::fit(&KnnParams { k: 3 }, &data).unwrap();
        let preds = knn.predict(&data).unwrap();
        assert_eq!(accuracy(data.labels(), &preds), 1.0);
    }

    #[test]
    fn k1_memorizes() {
        let data = clusters();
        let knn = Knn::fit(&KnnParams { k: 1 }, &data).unwrap();
        let preds = knn.predict(&data).unwrap();
        assert_eq!(preds, data.labels());
    }

    #[test]
    fn k_clamped_to_train_size() {
        let data = FeatureMatrix::from_parts(vec![0.0, 1.0], 2, 1, vec![0, 1], 2);
        let knn = Knn::fit(&KnnParams { k: 99 }, &data).unwrap();
        assert_eq!(knn.k(), 2);
        assert_eq!(knn.predict(&data).unwrap().len(), 2);
    }

    #[test]
    fn probabilities_are_vote_fractions() {
        // Query equidistant-ish to 2 zeros and 1 one with k=3.
        let data = FeatureMatrix::from_parts(vec![0.0, 0.1, 5.0], 3, 1, vec![0, 0, 1], 2);
        let knn = Knn::fit(&KnnParams { k: 3 }, &data).unwrap();
        let q = FeatureMatrix::from_parts(vec![0.05], 1, 1, vec![0], 2);
        let p = knn.predict_proba(&q).unwrap();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_sensitivity() {
        // The behaviour the paper observes: one extreme training point can
        // flip nearby predictions under distance voting.
        let clean = FeatureMatrix::from_parts(
            vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0],
            6,
            1,
            vec![0, 0, 0, 1, 1, 1],
            2,
        );
        let dirty = FeatureMatrix::from_parts(
            vec![0.0, 1.0, 2.0, 3.2, 11.0, 12.0], // class-1 point dragged near class 0
            6,
            1,
            vec![0, 0, 0, 1, 1, 1],
            2,
        );
        let q = FeatureMatrix::from_parts(vec![3.0], 1, 1, vec![0], 2);
        let clean_knn = Knn::fit(&KnnParams { k: 1 }, &clean).unwrap();
        let dirty_knn = Knn::fit(&KnnParams { k: 1 }, &dirty).unwrap();
        assert_eq!(clean_knn.predict(&q).unwrap(), vec![0]);
        assert_eq!(dirty_knn.predict(&q).unwrap(), vec![1]);
    }

    #[test]
    fn errors() {
        let data = clusters();
        assert!(Knn::fit(&KnnParams { k: 0 }, &data).is_err());
        let empty = FeatureMatrix::from_parts(vec![], 0, 0, vec![], 2);
        assert!(Knn::fit(&KnnParams::default(), &empty).is_err());
        let knn = Knn::fit(&KnnParams::default(), &data).unwrap();
        let bad = FeatureMatrix::from_parts(vec![0.0; 3], 1, 3, vec![0], 2);
        assert!(knn.predict(&bad).is_err());
    }
}
