//! Error type shared by all model operations.

use std::fmt;

/// Errors raised while fitting or applying models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Training data had no rows.
    EmptyTrainingSet,
    /// Training and prediction matrices disagree on the feature count.
    DimensionMismatch { expected: usize, got: usize },
    /// An invalid hyper-parameter value was supplied.
    InvalidParam { param: &'static str, message: String },
    /// Cross-validation was asked for more folds than rows.
    TooFewRowsForCv { rows: usize, folds: usize },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} features but got {got}")
            }
            MlError::InvalidParam { param, message } => {
                write!(f, "invalid value for `{param}`: {message}")
            }
            MlError::TooFewRowsForCv { rows, folds } => {
                write!(f, "cannot run {folds}-fold CV on {rows} rows")
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MlError::EmptyTrainingSet.to_string().contains("empty"));
        let e = MlError::DimensionMismatch { expected: 3, got: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
