//! # cleanml-ml
//!
//! From-scratch classifiers and model-selection machinery for the CleanML
//! study. The paper (§III-D) trains seven classical models on structured
//! datasets — Logistic Regression, KNN, Decision Tree, Random Forest,
//! AdaBoost, XGBoost and Naive Bayes — plus, for the robust-ML comparison
//! (§VII-B), a three-layer MLP and the NaCL missing-feature-robust logistic
//! regression. All of them are implemented here on top of the dense
//! [`FeatureMatrix`](cleanml_dataset::FeatureMatrix) produced by
//! `cleanml-dataset`'s encoder:
//!
//! | paper model | module | algorithm |
//! |---|---|---|
//! | Logistic Regression | [`logistic`] | multinomial softmax regression, full-batch gradient descent, L2 |
//! | KNN | [`knn`] | brute-force Euclidean k-nearest neighbours |
//! | Decision Tree | [`tree`] | CART with Gini impurity, sample weights |
//! | Random Forest | [`forest`] | bootstrap-aggregated CART with feature subsampling |
//! | AdaBoost | [`adaboost`] | SAMME over shallow weighted trees |
//! | XGBoost | [`gbdt`] | second-order gradient boosting with regularized leaf weights |
//! | Naive Bayes | [`naive_bayes`] | Gaussian NB with variance smoothing |
//! | MLP (robust-ML baseline) | [`mlp`] | 2-hidden-layer ReLU network, SGD + momentum |
//! | NaCL (robust-ML baseline) | [`nacl`] | feature-dropout logistic regression that tolerates missing inputs |
//!
//! The unifying interface is [`ModelSpec`] (hyper-parameters) →
//! [`ModelSpec::fit`] → [`FittedModel`] (predictions). [`cv`] provides
//! k-fold cross-validation and the random hyper-parameter search the paper
//! uses; [`selection`] implements validation-based model selection (the
//! paper's R2 relation).

pub mod adaboost;
pub mod codec;
pub mod cv;
pub mod error;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod nacl;
pub mod naive_bayes;
pub mod selection;
pub mod tree;

pub use codec::{decode_model, encode_model};
pub use error::MlError;
pub use metrics::{accuracy, confusion_matrix, f1_binary, macro_f1, Metric};
pub use model::{FittedModel, ModelKind, ModelSpec, PAPER_MODELS};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;
