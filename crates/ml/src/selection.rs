//! Validation-based model selection — the paper's R2 step.
//!
//! "We train all seven ML models and select the model with the best
//! validation accuracy from cross validation" (paper §IV-A, modification for
//! s2). [`select_best_model`] runs the per-family hyper-parameter search and
//! keeps the family whose best candidate validates highest, returning both
//! the winner and the per-family leaderboard (Table 8 in the paper shows
//! exactly such a leaderboard).

use cleanml_dataset::FeatureMatrix;

use crate::cv::{random_search_with_plan, FoldPlan, SearchBudget, SearchResult};
use crate::metrics::Metric;
use crate::model::{FittedModel, ModelKind, ModelSpec};
use crate::Result;

/// Winner of a model-selection run.
#[derive(Debug, Clone)]
pub struct SelectedModel {
    /// Winning hyper-parameters.
    pub spec: ModelSpec,
    /// Its mean validation score.
    pub val_score: f64,
    /// Model fitted on the full training data with the winning spec.
    pub model: FittedModel,
    /// Per-family results, in the order of `kinds` (the leaderboard).
    pub leaderboard: Vec<(ModelKind, f64)>,
}

/// Selects the best model family + hyper-parameters by validation score and
/// refits it on all of `data`.
///
/// Ties are broken in favour of the family listed first in `kinds`, keeping
/// the selection deterministic.
///
/// Every family's search runs the same `(n_rows, cv_folds, seed)` CV key,
/// so one [`FoldPlan`] is threaded through all of them: the fold matrices
/// (and their argsort sidecars) are materialized once for the whole
/// leaderboard, not once per family per candidate.
pub fn select_best_model(
    kinds: &[ModelKind],
    data: &FeatureMatrix,
    budget: SearchBudget,
    seed: u64,
    metric: Metric,
) -> Result<SelectedModel> {
    assert!(!kinds.is_empty(), "need at least one model family");
    let plan = FoldPlan::new(data, budget.cv_folds, seed)?;
    let mut best: Option<(SearchResult, usize)> = None;
    let mut leaderboard = Vec::with_capacity(kinds.len());
    for (i, &kind) in kinds.iter().enumerate() {
        let result = random_search_with_plan(kind, &plan, budget, seed, metric)?;
        leaderboard.push((kind, result.val_score));
        let better = match &best {
            None => true,
            Some((b, _)) => result.val_score > b.val_score,
        };
        if better {
            best = Some((result, i));
        }
    }
    let (winner, _) = best.expect("kinds non-empty");
    let model = winner.spec.fit(data, seed)?;
    Ok(SelectedModel { spec: winner.spec, val_score: winner.val_score, model, leaderboard })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PAPER_MODELS;

    fn xor_data(n: usize) -> FeatureMatrix {
        // Not linearly separable: tree-family models should win over LR/NB.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = (i / 2) % 2;
            let b = i % 2;
            let jitter = ((i * 17 % 29) as f64 / 29.0 - 0.5) * 0.3;
            data.push(a as f64 + jitter);
            data.push(b as f64 - jitter);
            labels.push(a ^ b);
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn selects_a_tree_family_on_xor() {
        let data = xor_data(120);
        let sel =
            select_best_model(&PAPER_MODELS, &data, SearchBudget::none(), 3, Metric::Accuracy)
                .unwrap();
        assert_eq!(sel.leaderboard.len(), 7);
        // The winner must be one of the nonlinear families.
        assert!(
            !matches!(sel.spec.kind(), ModelKind::LogisticRegression | ModelKind::NaiveBayes),
            "winner was {}",
            sel.spec.kind()
        );
        assert!(sel.val_score > 0.8);
        // The fitted model predicts.
        assert_eq!(sel.model.predict(&data).unwrap().len(), 120);
    }

    #[test]
    fn leaderboard_contains_winner_score() {
        let data = xor_data(60);
        let sel = select_best_model(
            &[ModelKind::DecisionTree, ModelKind::NaiveBayes],
            &data,
            SearchBudget::none(),
            0,
            Metric::Accuracy,
        )
        .unwrap();
        let max = sel.leaderboard.iter().map(|(_, s)| *s).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(sel.val_score, max);
    }

    #[test]
    fn deterministic() {
        let data = xor_data(60);
        let go = || {
            select_best_model(&PAPER_MODELS, &data, SearchBudget::none(), 5, Metric::Accuracy)
                .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.leaderboard, b.leaderboard);
    }

    #[test]
    #[should_panic(expected = "at least one model family")]
    fn empty_kinds_rejected() {
        let data = xor_data(10);
        let _ = select_best_model(&[], &data, SearchBudget::none(), 0, Metric::Accuracy);
    }
}
