//! Property-based tests for the classifiers: every family must produce
//! valid probability distributions and in-range predictions on arbitrary
//! (well-formed) training data, including degenerate shapes.

use proptest::prelude::*;

use cleanml_dataset::FeatureMatrix;
use cleanml_ml::{ModelKind, ModelSpec, PAPER_MODELS};

/// Strategy: a small random binary-classification matrix.
fn arb_matrix() -> impl Strategy<Value = FeatureMatrix> {
    (2usize..30, 1usize..4).prop_flat_map(|(n, d)| {
        (prop::collection::vec(-5.0f64..5.0, n * d), prop::collection::vec(0usize..2, n))
            .prop_map(move |(data, labels)| FeatureMatrix::from_parts(data, n, d, labels, 2))
    })
}

/// Cheap model families exercised per proptest case (the full seven run in
/// the unit tests; proptest multiplies cases, so keep the hot loop small).
const FAST_KINDS: [ModelKind; 4] =
    [ModelKind::DecisionTree, ModelKind::NaiveBayes, ModelKind::Knn, ModelKind::LogisticRegression];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Probabilities are valid distributions; predictions are in range and
    /// consistent with the argmax of the probabilities.
    #[test]
    fn predictions_well_formed(m in arb_matrix(), seed in any::<u64>()) {
        for kind in FAST_KINDS {
            let model = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            let preds = model.predict(&m).expect("predict");
            let probs = model.predict_proba(&m).expect("proba");
            prop_assert_eq!(preds.len(), m.n_rows());
            prop_assert_eq!(probs.len(), m.n_rows() * 2);
            for (i, row) in probs.chunks_exact(2).enumerate() {
                prop_assert!(row.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
                    "{kind}: bad probs {row:?}");
                let sum: f64 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "{kind}: sum {sum}");
                prop_assert!(preds[i] < 2, "{kind}: class out of range");
            }
        }
    }

    /// Fitting is deterministic given the seed.
    #[test]
    fn fit_deterministic(m in arb_matrix(), seed in any::<u64>()) {
        for kind in [ModelKind::RandomForest, ModelKind::Mlp] {
            let a = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            let b = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            prop_assert_eq!(a.predict_proba(&m).expect("p"), b.predict_proba(&m).expect("p"));
        }
    }

    /// Perfectly separated 1-D data is learned exactly by every family.
    #[test]
    fn separable_data_is_learned(gap in 3.0f64..20.0, n_per in 4usize..15) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            data.push(-gap - i as f64 * 0.1);
            labels.push(0);
        }
        for i in 0..n_per {
            data.push(gap + i as f64 * 0.1);
            labels.push(1);
        }
        let m = FeatureMatrix::from_parts(data, 2 * n_per, 1, labels, 2);
        for kind in PAPER_MODELS {
            let model = ModelSpec::default_for(kind).fit(&m, 7).expect("fit");
            let preds = model.predict(&m).expect("predict");
            let acc = cleanml_ml::accuracy(m.labels(), &preds);
            prop_assert!(acc > 0.99, "{kind} failed separable data: {acc}");
        }
    }

    /// The binary model codec round-trips arbitrary fitted models
    /// bit-exactly, and every truncation of the encoding fails closed.
    #[test]
    fn model_codec_round_trips(m in arb_matrix(), seed in any::<u64>()) {
        for kind in FAST_KINDS {
            let model = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            let bytes = cleanml_ml::codec::encode_model(&model);
            let back = cleanml_ml::codec::decode_model(&bytes).expect("decode");
            prop_assert_eq!(&back, &model, "{}", kind);
            prop_assert_eq!(
                back.predict_proba(&m).expect("p"),
                model.predict_proba(&m).expect("p"),
                "{}", kind
            );
            for cut in 0..bytes.len() {
                prop_assert!(
                    cleanml_ml::codec::decode_model(&bytes[..cut]).is_none(),
                    "{}: truncation at {} decoded", kind, cut
                );
            }
        }
    }

    /// Adversarial mutation: flipping any byte of a valid model encoding
    /// parses or rejects — never a panic, never a hang, never a runaway
    /// allocation. (In the store such bytes can't even reach the decoder:
    /// the artifact frame's checksum rejects them first. This property
    /// covers future transports that might skip the frame.)
    #[test]
    fn model_decoder_is_total(m in arb_matrix(), seed in any::<u64>(), mutate in any::<u64>()) {
        let kind = FAST_KINDS[(seed % FAST_KINDS.len() as u64) as usize];
        let model = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
        let mut bytes = cleanml_ml::codec::encode_model(&model);
        let pos = (mutate as usize) % bytes.len();
        bytes[pos] ^= (mutate >> 8) as u8 | 1;
        let _ = cleanml_ml::codec::decode_model(&bytes); // Some or None, no panic
    }
}
