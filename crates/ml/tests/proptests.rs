//! Property-based tests for the classifiers: every family must produce
//! valid probability distributions and in-range predictions on arbitrary
//! (well-formed) training data, including degenerate shapes.

use proptest::prelude::*;

use cleanml_dataset::FeatureMatrix;
use cleanml_ml::{ModelKind, ModelSpec, PAPER_MODELS};

/// Strategy: a small random binary-classification matrix.
fn arb_matrix() -> impl Strategy<Value = FeatureMatrix> {
    (2usize..30, 1usize..4).prop_flat_map(|(n, d)| {
        (prop::collection::vec(-5.0f64..5.0, n * d), prop::collection::vec(0usize..2, n))
            .prop_map(move |(data, labels)| FeatureMatrix::from_parts(data, n, d, labels, 2))
    })
}

/// Cheap model families exercised per proptest case (the full seven run in
/// the unit tests; proptest multiplies cases, so keep the hot loop small).
const FAST_KINDS: [ModelKind; 4] =
    [ModelKind::DecisionTree, ModelKind::NaiveBayes, ModelKind::Knn, ModelKind::LogisticRegression];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Probabilities are valid distributions; predictions are in range and
    /// consistent with the argmax of the probabilities.
    #[test]
    fn predictions_well_formed(m in arb_matrix(), seed in any::<u64>()) {
        for kind in FAST_KINDS {
            let model = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            let preds = model.predict(&m).expect("predict");
            let probs = model.predict_proba(&m).expect("proba");
            prop_assert_eq!(preds.len(), m.n_rows());
            prop_assert_eq!(probs.len(), m.n_rows() * 2);
            for (i, row) in probs.chunks_exact(2).enumerate() {
                prop_assert!(row.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
                    "{kind}: bad probs {row:?}");
                let sum: f64 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "{kind}: sum {sum}");
                prop_assert!(preds[i] < 2, "{kind}: class out of range");
            }
        }
    }

    /// Fitting is deterministic given the seed.
    #[test]
    fn fit_deterministic(m in arb_matrix(), seed in any::<u64>()) {
        for kind in [ModelKind::RandomForest, ModelKind::Mlp] {
            let a = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            let b = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            prop_assert_eq!(a.predict_proba(&m).expect("p"), b.predict_proba(&m).expect("p"));
        }
    }

    /// Perfectly separated 1-D data is learned exactly by every family.
    #[test]
    fn separable_data_is_learned(gap in 3.0f64..20.0, n_per in 4usize..15) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            data.push(-gap - i as f64 * 0.1);
            labels.push(0);
        }
        for i in 0..n_per {
            data.push(gap + i as f64 * 0.1);
            labels.push(1);
        }
        let m = FeatureMatrix::from_parts(data, 2 * n_per, 1, labels, 2);
        for kind in PAPER_MODELS {
            let model = ModelSpec::default_for(kind).fit(&m, 7).expect("fit");
            let preds = model.predict(&m).expect("predict");
            let acc = cleanml_ml::accuracy(m.labels(), &preds);
            prop_assert!(acc > 0.99, "{kind} failed separable data: {acc}");
        }
    }

    /// The binary model codec round-trips arbitrary fitted models
    /// bit-exactly, and every truncation of the encoding fails closed.
    #[test]
    fn model_codec_round_trips(m in arb_matrix(), seed in any::<u64>()) {
        for kind in FAST_KINDS {
            let model = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
            let bytes = cleanml_ml::codec::encode_model(&model);
            let back = cleanml_ml::codec::decode_model(&bytes).expect("decode");
            prop_assert_eq!(&back, &model, "{}", kind);
            prop_assert_eq!(
                back.predict_proba(&m).expect("p"),
                model.predict_proba(&m).expect("p"),
                "{}", kind
            );
            for cut in 0..bytes.len() {
                prop_assert!(
                    cleanml_ml::codec::decode_model(&bytes[..cut]).is_none(),
                    "{}: truncation at {} decoded", kind, cut
                );
            }
        }
    }

    /// Adversarial mutation: flipping any byte of a valid model encoding
    /// parses or rejects — never a panic, never a hang, never a runaway
    /// allocation. (In the store such bytes can't even reach the decoder:
    /// the artifact frame's checksum rejects them first. This property
    /// covers future transports that might skip the frame.)
    #[test]
    fn model_decoder_is_total(m in arb_matrix(), seed in any::<u64>(), mutate in any::<u64>()) {
        let kind = FAST_KINDS[(seed % FAST_KINDS.len() as u64) as usize];
        let model = ModelSpec::default_for(kind).fit(&m, seed).expect("fit");
        let mut bytes = cleanml_ml::codec::encode_model(&model);
        let pos = (mutate as usize) % bytes.len();
        bytes[pos] ^= (mutate >> 8) as u8 | 1;
        let _ = cleanml_ml::codec::decode_model(&bytes); // Some or None, no panic
    }
}

// ---- CV fold plane: plan-backed paths are bit-identical to the naive
// per-candidate implementation -----------------------------------------

use cleanml_dataset::split::kfold_indices;
use cleanml_ml::cv::{cross_val_score_with_plan, random_search_with_plan, FoldPlan, SearchBudget};
use cleanml_ml::Metric;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-plan `cross_val_score`, spelled out exactly as it was: fresh
/// `kfold_indices` + two `select_rows` gathers per fold, per call.
fn naive_cross_val_score(
    spec: &ModelSpec,
    data: &FeatureMatrix,
    k: usize,
    seed: u64,
    metric: Metric,
) -> Option<f64> {
    let n = data.n_rows();
    if n < 2 {
        return None;
    }
    let k = k.clamp(2, n);
    let folds = kfold_indices(n, k, seed);
    let mut total = 0.0;
    let mut used = 0usize;
    for (fold_id, (train_idx, val_idx)) in folds.iter().enumerate() {
        if train_idx.is_empty() || val_idx.is_empty() {
            continue;
        }
        let train = data.select_rows(train_idx);
        let val = data.select_rows(val_idx);
        let model = spec.fit(&train, seed.wrapping_add(fold_id as u64)).expect("fit");
        let preds = model.predict(&val).expect("predict");
        total += metric.score(val.labels(), &preds);
        used += 1;
    }
    (used > 0).then(|| total / used as f64)
}

/// The pre-plan `random_search`: one serial candidate loop, each candidate
/// re-running the naive CV from scratch.
fn naive_random_search(
    kind: ModelKind,
    data: &FeatureMatrix,
    budget: SearchBudget,
    seed: u64,
    metric: Metric,
) -> (ModelSpec, f64) {
    let n_candidates = budget.n_candidates.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let mut best: Option<(ModelSpec, f64)> = None;
    for c in 0..n_candidates {
        let spec =
            if c == 0 { ModelSpec::default_for(kind) } else { ModelSpec::sample(kind, &mut rng) };
        let score = naive_cross_val_score(&spec, data, budget.cv_folds, seed, metric)
            .expect("usable folds");
        let better = match &best {
            None => true,
            Some((_, b)) => score > *b,
        };
        if better {
            best = Some((spec, score));
        }
    }
    best.expect("n_candidates >= 1")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `FoldPlan`-backed CV scores are bit-identical to the naive
    /// per-candidate path across families, fold counts (including the
    /// degenerate k > n_rows clamp and size-1 folds) and seeds.
    #[test]
    fn plan_cv_bit_identical_to_naive(
        m in arb_matrix(),
        seed in any::<u64>(),
        k in 2usize..40,
    ) {
        for kind in FAST_KINDS {
            let spec = ModelSpec::default_for(kind);
            let plan = FoldPlan::new(&m, k, seed).expect("n >= 2 by construction");
            let planned =
                cross_val_score_with_plan(&spec, &plan, Metric::Accuracy).expect("cv");
            let naive =
                naive_cross_val_score(&spec, &m, k, seed, Metric::Accuracy).expect("cv");
            prop_assert_eq!(planned.to_bits(), naive.to_bits(), "{} k={}", kind, k);
        }
    }

    /// Plan-backed random search returns the same winning spec and the
    /// bit-identical validation score as the naive path across budgets —
    /// including multi-candidate budgets where the plan actually
    /// deduplicates fold materialization.
    #[test]
    fn plan_search_bit_identical_to_naive(
        m in arb_matrix(),
        seed in any::<u64>(),
        n_candidates in 1usize..4,
        cv_folds in 2usize..6,
    ) {
        let budget = SearchBudget { n_candidates, cv_folds };
        for kind in [ModelKind::DecisionTree, ModelKind::NaiveBayes] {
            let plan = FoldPlan::new(&m, budget.cv_folds, seed).expect("plan");
            let got = random_search_with_plan(kind, &plan, budget, seed, Metric::Accuracy)
                .expect("search");
            let (want_spec, want_score) =
                naive_random_search(kind, &m, budget, seed, Metric::Accuracy);
            prop_assert_eq!(&got.spec, &want_spec, "{}", kind);
            prop_assert_eq!(got.val_score.to_bits(), want_score.to_bits(), "{}", kind);
        }
    }
}
