//! Property-based tests for the tabular substrate, including the dialect
//! guarantee the artifact store depends on: `read_csv(write_csv(t))`
//! reproduces `t` exactly for *arbitrary* string content — edge whitespace,
//! embedded quotes/commas/CR/LF, null placeholders, numeric-looking text.

use proptest::prelude::*;

use cleanml_dataset::codec::{
    decode_table_from, encode_table_into, open_frame, push_f64, push_str, push_u64, seal_frame,
    take_bytes, take_f64, take_str, take_u64, Reader, FRAME_HEADER_LEN,
};
use cleanml_dataset::csv::{read_csv, write_csv};
use cleanml_dataset::{ColumnKind, Encoder, FeatureMatrix, FieldMeta, Schema, Table, Value};

/// Characters that historically broke the dialect, over-weighted on purpose.
const PALETTE: &[char] =
    &['a', 'b', 'Z', '0', '7', '.', '-', '+', 'e', ' ', '\t', ',', '"', '\n', '\r', 'é', '€', '_'];

/// Strings that must survive verbatim even though they collide with the
/// dialect's null placeholders and number syntax.
const TRAPS: &[&str] =
    &["", "NaN", "nan", "NA", "null", "NULL", " ", "1.5", "-0", "3e7", " x", "x ", "\"\"", "inf"];

fn arb_string() -> impl Strategy<Value = String> {
    (0usize..4, prop::collection::vec(0usize..PALETTE.len(), 0..10)).prop_map(|(pick, ix)| {
        if pick == 0 {
            TRAPS[ix.iter().sum::<usize>() % TRAPS.len()].to_string()
        } else {
            ix.into_iter().map(|i| PALETTE[i]).collect()
        }
    })
}

/// A categorical table with arbitrary string cells (`None` = missing).
fn string_table(columns: Vec<Vec<Option<String>>>) -> Table {
    let n_cols = columns.len();
    let n_rows = columns[0].len();
    let fields = (0..n_cols).map(|c| FieldMeta::cat_feature(format!("col{c}"))).collect();
    let mut t = Table::with_capacity(Schema::new(fields), n_rows);
    for r in 0..n_rows {
        let row = columns.iter().map(|col| Value::from(col[r].as_deref())).collect();
        t.push_row(row).expect("well-formed row");
    }
    t
}

/// Strategy: a small mixed-type table with a label column.
fn arb_table() -> impl Strategy<Value = Table> {
    let row = (prop::option::of(-1e6f64..1e6), prop::option::of("[a-z]{1,6}"), prop::bool::ANY);
    prop::collection::vec(row, 1..40).prop_map(|rows| {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, c, y) in rows {
            t.push_row(vec![
                Value::from(x),
                Value::from(c),
                Value::from(if y { "pos" } else { "neg" }),
            ])
            .expect("schema matches");
        }
        t
    })
}

proptest! {
    /// CSV write → read round-trips every cell (modulo float formatting,
    /// which `{}` keeps exact for f64).
    #[test]
    fn csv_round_trip(t in arb_table()) {
        let text = write_csv(&t);
        let back = read_csv(&text).expect("parse");
        prop_assert_eq!(back.n_rows(), t.n_rows());
        prop_assert_eq!(back.n_columns(), t.n_columns());
        for r in 0..t.n_rows() {
            for c in 0..t.n_columns() {
                let orig = t.get(r, c).expect("cell");
                let round = back.get(r, c).expect("cell");
                // numeric column may come back categorical when all values
                // are missing; compare displays to stay robust
                prop_assert_eq!(orig.to_string(), round.to_string(), "cell {},{}", r, c);
            }
        }
    }

    /// `gather` then cell-compare agrees with direct indexing.
    #[test]
    fn gather_selects_rows(t in arb_table(), seed in any::<u64>()) {
        let n = t.n_rows();
        let indices: Vec<usize> = (0..n).map(|i| (i.wrapping_mul(seed as usize % 7 + 1)) % n).collect();
        let g = t.gather(&indices);
        prop_assert_eq!(g.n_rows(), indices.len());
        for (new_r, &old_r) in indices.iter().enumerate() {
            for c in 0..t.n_columns() {
                prop_assert_eq!(g.get(new_r, c).expect("cell"), t.get(old_r, c).expect("cell"));
            }
        }
    }

    /// Deletion never leaves missing feature cells and never grows the table.
    #[test]
    fn deletion_invariants(t in arb_table()) {
        let d = t.drop_rows_with_missing();
        prop_assert!(d.n_rows() <= t.n_rows());
        prop_assert_eq!(d.n_missing_cells(), 0);
    }

    /// Encoding produces finite features of stable shape, and every label
    /// index is within range.
    #[test]
    fn encoder_output_well_formed(t in arb_table()) {
        // the encoder requires at least one observed label and feature
        let complete = t.drop_rows_with_missing();
        if complete.n_rows() == 0 {
            return Ok(());
        }
        // Declare both classes up front (as the study runner does with
        // `fit_with_classes`): the deletion-reduced table may have lost a
        // class that still occurs in the original rows.
        let classes = ["neg".to_string(), "pos".to_string()];
        let enc = match Encoder::fit_with_classes(&complete, &classes) {
            Ok(e) => e,
            Err(_) => return Ok(()), // e.g. zero observed classes
        };
        let m = enc.transform(&complete).expect("transform train");
        prop_assert_eq!(m.n_rows(), complete.n_rows());
        prop_assert!(m.data().iter().all(|v| v.is_finite()));
        prop_assert!(m.labels().iter().all(|&l| l < m.n_classes()));
        // transforming the *original* table (with missing cells) also works
        let m2 = enc.transform(&t).expect("transform dirty");
        prop_assert_eq!(m2.n_rows(), t.n_rows());
        prop_assert!(m2.data().iter().all(|v| v.is_finite()));
    }

    /// Split + gather preserves multiset of labels.
    #[test]
    fn split_preserves_rows(t in arb_table(), seed in any::<u64>()) {
        prop_assume!(t.n_rows() >= 2);
        let (train, test) = t.split(0.3, seed).expect("split");
        prop_assert_eq!(train.n_rows() + test.n_rows(), t.n_rows());
        let count = |tab: &Table| {
            let label = tab.label_index().expect("label");
            let col = tab.column(label).expect("col");
            (0..tab.n_rows()).filter(|&r| col.cat_str(r) == Some("pos")).count()
        };
        prop_assert_eq!(count(&train) + count(&test), count(&t));
    }

    /// Arbitrary string tables survive a CSV write/read cycle cell-for-cell,
    /// and no non-empty column flips kind (quoting pins categoricals).
    #[test]
    fn csv_round_trips_arbitrary_strings(
        cols in (1usize..4, 1usize..8).prop_flat_map(|(c, r)| {
            prop::collection::vec(
                prop::collection::vec(prop::option::of(arb_string()), r..r + 1),
                c..c + 1,
            )
        })
    ) {
        let t = string_table(cols);
        let text = write_csv(&t);
        let back = read_csv(&text).expect("written CSV must parse");
        prop_assert_eq!(back.n_rows(), t.n_rows());
        prop_assert_eq!(back.n_columns(), t.n_columns());
        for c in 0..t.n_columns() {
            let has_value = (0..t.n_rows()).any(|r| t.get(r, c).unwrap() != Value::Null);
            if has_value {
                prop_assert_eq!(
                    back.schema().field(c).unwrap().kind,
                    ColumnKind::Categorical,
                    "column {} flipped kind\nCSV:\n{}", c, text
                );
            }
            for r in 0..t.n_rows() {
                prop_assert_eq!(
                    t.get(r, c).unwrap(),
                    back.get(r, c).unwrap(),
                    "cell ({}, {})\nCSV:\n{}", r, c, text
                );
            }
        }
    }

    /// The parser never panics on arbitrary text — it parses or rejects.
    #[test]
    fn csv_parser_is_total(raw in prop::collection::vec(0usize..PALETTE.len(), 0..40)) {
        let text: String = raw.into_iter().map(|i| PALETTE[i]).collect();
        let _ = read_csv(&text); // Ok or Err, never a panic
    }

    /// The binary artifact codec (the engine's on-disk table form) is exact
    /// for arbitrary mixed tables, and every truncation of the stream fails
    /// closed.
    #[test]
    fn wire_codec_round_trips_arbitrary_tables(
        strings in prop::collection::vec(prop::option::of(arb_string()), 1..6),
        nums in prop::collection::vec(prop::option::of(-1e300f64..1e300), 1..6),
        cut in 0usize..1000
    ) {
        let n_rows = strings.len().min(nums.len());
        let fields = vec![FieldMeta::cat_feature("s"), FieldMeta::num_feature("x")];
        let mut t = Table::with_capacity(Schema::new(fields), n_rows);
        for r in 0..n_rows {
            t.push_row(vec![Value::from(strings[r].as_deref()), Value::from(nums[r])])
                .expect("row");
        }
        let mut out = Vec::new();
        encode_table_into(&mut out, &t);
        let mut r = Reader::new(&out);
        let back = decode_table_from(&mut r).expect("decode");
        prop_assert!(r.is_empty(), "trailing bytes");
        prop_assert_eq!(back, t);
        let cut = cut % out.len();
        prop_assert!(decode_table_from(&mut Reader::new(&out[..cut])).is_none());
    }

    /// Wire primitives are exact for arbitrary values and reject every
    /// truncation.
    #[test]
    fn wire_primitives_round_trip(x in any::<u64>(), f in any::<f64>(), s in arb_string()) {
        let mut out = Vec::new();
        push_u64(&mut out, x);
        push_f64(&mut out, f);
        push_str(&mut out, &s);
        let mut r = Reader::new(&out);
        prop_assert_eq!(take_u64(&mut r), Some(x));
        prop_assert_eq!(take_f64(&mut r).map(f64::to_bits), Some(f.to_bits()));
        let got = take_str(&mut r);
        prop_assert_eq!(got.as_deref(), Some(s.as_str()));
        prop_assert!(r.is_empty());
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            // reading the full triple from any prefix must fail somewhere
            let complete = take_u64(&mut r).is_some()
                && take_f64(&mut r).is_some()
                && take_str(&mut r).is_some();
            prop_assert!(!complete, "truncation at {} decoded fully", cut);
        }
    }

    /// An oversized length prefix is rejected before any allocation: a
    /// buffer declaring a huge string/byte length decodes to `None` no
    /// matter how large the declared size is.
    #[test]
    fn oversized_length_tokens_never_allocate(declared in any::<u64>(), junk in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut out = Vec::new();
        push_u64(&mut out, declared);
        out.extend_from_slice(&junk);
        let mut r = Reader::new(&out);
        if let Some(bytes) = take_bytes(&mut r) {
            // only lengths actually backed by bytes may succeed
            prop_assert!(bytes.len() as u64 == declared && declared <= junk.len() as u64);
        }
    }

    /// Frame integrity: any single bit flip anywhere in a sealed frame is
    /// detected (FNV-1a's absorb step is injective per byte, so equal-length
    /// payload corruption always changes the checksum), and every
    /// truncation or extension fails closed.
    #[test]
    fn frame_detects_any_single_bit_flip(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        flip_bit in 0usize..10_000,
        cut in 0usize..10_000
    ) {
        let framed = seal_frame(&payload);
        prop_assert_eq!(open_frame(&framed), Some(payload.as_slice()));
        prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());

        let mut corrupt = framed.clone();
        let bit = flip_bit % (framed.len() * 8);
        corrupt[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(open_frame(&corrupt).is_none(), "bit flip {} accepted", bit);

        let cut = cut % framed.len();
        prop_assert!(open_frame(&framed[..cut]).is_none(), "truncation at {} accepted", cut);
        let mut long = framed;
        long.push(0);
        prop_assert!(open_frame(&long).is_none(), "trailing byte accepted");
    }

    /// Arbitrary bytes fed to the table decoder parse or reject — never a
    /// panic, never a runaway allocation.
    #[test]
    fn table_decoder_is_total(raw in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_table_from(&mut Reader::new(&raw));
        let _ = open_frame(&raw);
        let _ = FeatureMatrix::decode_from(&mut Reader::new(&raw));
        let _ = Encoder::decode_from(&mut Reader::new(&raw));
    }

    /// The columnar arena is an exact relayout: every cell read through the
    /// row view (`read_row`/`row_vec`), the column view (`col`), and the
    /// strided scalar (`at`) is the same bits, missingness included — and
    /// the sorted-index sidecars are true argsorts of the columns.
    #[test]
    fn row_and_column_views_agree(t in arb_table()) {
        let complete = t.drop_rows_with_missing();
        if complete.n_rows() == 0 {
            return Ok(());
        }
        let classes = ["neg".to_string(), "pos".to_string()];
        let enc = match Encoder::fit_with_classes(&complete, &classes) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let m = enc.transform(&t).expect("transform");
        let (n, d) = (m.n_rows(), m.n_cols());
        let mut row = vec![0.0; d];
        for i in 0..n {
            m.read_row(i, &mut row);
            let owned = m.row_vec(i);
            for j in 0..d {
                let through_col = m.col(j)[i];
                prop_assert_eq!(m.at(i, j).to_bits(), through_col.to_bits(), "at ({},{})", i, j);
                prop_assert_eq!(row[j].to_bits(), through_col.to_bits(), "read_row ({},{})", i, j);
                prop_assert_eq!(owned[j].to_bits(), through_col.to_bits(), "row_vec ({},{})", i, j);
                prop_assert_eq!(m.missing_at(i, j), m.missing_col(j)[i], "missing ({},{})", i, j);
            }
        }
        // plain sidecar: each column's permutation, ascending by (value, row)
        let sorted = m.sorted_cols();
        prop_assert_eq!(sorted.len(), d);
        for j in 0..d {
            let col = m.col(j);
            let idx = &sorted[j];
            prop_assert_eq!(idx.len(), n);
            let mut seen = vec![false; n];
            for w in idx.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                prop_assert!(
                    (col[a], a) <= (col[b], b),
                    "column {} not sorted by (value, row)", j
                );
            }
            for &i in idx.iter() {
                seen[i as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "column {} is not a permutation", j);
        }
        // chained sidecar: each stage is a permutation, non-decreasing in
        // its own column, with ties keeping the previous stage's order
        let chained = m.sorted_cols_chained();
        prop_assert_eq!(chained.len(), d);
        for j in 0..d {
            let col = m.col(j);
            let idx = &chained[j];
            let prev_pos: Vec<usize> = if j == 0 {
                (0..n).collect()
            } else {
                let mut pos = vec![0; n];
                for (p, &i) in chained[j - 1].iter().enumerate() {
                    pos[i as usize] = p;
                }
                pos
            };
            for w in idx.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                prop_assert!(col[a] <= col[b], "chain stage {} not sorted", j);
                if col[a] == col[b] {
                    prop_assert!(
                        prev_pos[a] < prev_pos[b],
                        "chain stage {} tie broke the previous order", j
                    );
                }
            }
        }
    }

    /// Encoder and FeatureMatrix binary codecs are exact: decode(encode(x))
    /// is structurally identical and transforms/predicts identically.
    #[test]
    fn encoder_and_matrix_codecs_round_trip(t in arb_table()) {
        let complete = t.drop_rows_with_missing();
        if complete.n_rows() == 0 {
            return Ok(());
        }
        let classes = ["neg".to_string(), "pos".to_string()];
        let enc = match Encoder::fit_with_classes(&complete, &classes) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let mut out = Vec::new();
        enc.encode_into(&mut out);
        let mut r = Reader::new(&out);
        let enc_back = Encoder::decode_from(&mut r).expect("encoder decode");
        prop_assert!(r.is_empty());
        prop_assert_eq!(&enc_back, &enc);

        let m = enc.transform(&t).expect("transform");
        let mut out = Vec::new();
        m.encode_into(&mut out);
        let mut r = Reader::new(&out);
        let m_back = FeatureMatrix::decode_from(&mut r).expect("matrix decode");
        prop_assert!(r.is_empty());
        prop_assert_eq!(m_back, m);
    }
}

/// The matrix wire format is pinned to these exact bytes: the canonical
/// row-major cell order (`i`-outer, `j`-inner) captured before the
/// in-memory layout went columnar. A byte of drift here means every
/// cached artifact store in the field silently turns into a cold re-run
/// — this test must only ever change together with a deliberate store
/// format bump.
#[test]
fn matrix_wire_golden_bytes_stay_stable() {
    #[rustfmt::skip]
    const GOLDEN: &[u8] = &[
        0x4d, 0x04, 0x02, 0x02, 0x01, 0x01, 0x00, 0x00, 0xff, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0xf0, 0xbf, 0x01, 0xff, 0x92, 0x24, 0x49, 0x92, 0x24,
        0x49, 0xc2, 0x3f, 0x00, 0x02, 0x02, 0x07, 0x01, 0x00, 0x01, 0x00, 0x01,
        0x78, 0x03, 0x63, 0x3d, 0x61,
    ];

    let schema = Schema::new(vec![
        FieldMeta::num_feature("x"),
        FieldMeta::cat_feature("c"),
        FieldMeta::label("y"),
    ]);
    let mut t = Table::new(schema);
    let rows: Vec<(Option<f64>, Option<&str>, &str)> = vec![
        (Some(1.5), Some("a"), "pos"),
        (None, Some("b"), "neg"),
        (Some(-2.0), Some("a"), "pos"),
        (Some(0.0), None, "neg"),
    ];
    for (x, c, y) in rows {
        t.push_row(vec![Value::from(x), Value::from(c), Value::from(y)]).expect("row");
    }
    let complete = t.drop_rows_with_missing();
    let classes = ["neg".to_string(), "pos".to_string()];
    let enc = Encoder::fit_with_classes(&complete, &classes).expect("fit");
    let m = enc.transform(&t).expect("transform");

    let mut out = Vec::new();
    m.encode_into(&mut out);
    assert_eq!(out, GOLDEN, "matrix wire bytes drifted from the committed format");

    // and the committed bytes decode to the exact same matrix
    let mut r = Reader::new(GOLDEN);
    let back = FeatureMatrix::decode_from(&mut r).expect("golden decodes");
    assert!(r.is_empty());
    assert_eq!(back, m);
    assert_eq!(back.n_rows(), 4);
    assert_eq!(back.n_cols(), 2);
    assert_eq!(back.labels(), &[1, 0, 1, 0]);
    assert!(back.missing_at(1, 0) && back.missing_at(3, 1));
}
