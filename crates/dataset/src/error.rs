//! Error type shared by all dataset operations.

use std::fmt;

/// Errors raised by table construction, mutation and encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A column name was looked up but does not exist in the schema.
    UnknownColumn(String),
    /// A row had a different number of cells than the schema has columns.
    RowArity { expected: usize, got: usize },
    /// A cell value did not match the column kind (e.g. a string pushed into
    /// a numeric column).
    KindMismatch { column: String, expected: &'static str, got: &'static str },
    /// A row index was out of bounds.
    RowOutOfBounds { index: usize, n_rows: usize },
    /// A column index was out of bounds.
    ColumnOutOfBounds { index: usize, n_columns: usize },
    /// The schema does not contain exactly one label column when one was
    /// required (e.g. for encoding).
    MissingLabel,
    /// The table (or a split of it) contained no rows where at least one was
    /// required.
    Empty(&'static str),
    /// CSV parsing failed.
    Csv { line: usize, message: String },
    /// An I/O error occurred (CSV read/write). Stored as a string so the
    /// error type stays `Clone + PartialEq`.
    Io(String),
    /// Encoding failed (e.g. label column had no observed classes).
    Encode(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DatasetError::RowArity { expected, got } => {
                write!(f, "row has {got} cells but schema has {expected} columns")
            }
            DatasetError::KindMismatch { column, expected, got } => {
                write!(f, "column `{column}` expects {expected} values but got {got}")
            }
            DatasetError::RowOutOfBounds { index, n_rows } => {
                write!(f, "row index {index} out of bounds for table with {n_rows} rows")
            }
            DatasetError::ColumnOutOfBounds { index, n_columns } => {
                write!(f, "column index {index} out of bounds for table with {n_columns} columns")
            }
            DatasetError::MissingLabel => write!(f, "schema has no label column"),
            DatasetError::Empty(what) => write!(f, "{what} is empty"),
            DatasetError::Csv { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            DatasetError::Io(message) => write!(f, "I/O error: {message}"),
            DatasetError::Encode(message) => write!(f, "encoding error: {message}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DatasetError::UnknownColumn("age".into());
        assert!(e.to_string().contains("age"));
        let e = DatasetError::RowArity { expected: 3, got: 2 };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = DatasetError::KindMismatch {
            column: "c".into(),
            expected: "numeric",
            got: "categorical",
        };
        assert!(e.to_string().contains("numeric"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DatasetError = io.into();
        assert!(matches!(e, DatasetError::Io(_)));
    }
}
