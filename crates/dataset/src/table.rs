//! The central [`Table`] type: schema + columns + row operations.

use crate::column::Column;
use crate::error::DatasetError;
use crate::schema::Schema;
use crate::split::split_indices;
use crate::value::Value;
use crate::Result;

/// A mixed-type, column-oriented dataset.
///
/// All CleanML experiment stages — error injection, detection, repair,
/// encoding — operate on `Table`s. Rows are addressed by position; columns by
/// position or name. Tables are cheap to clone relative to experiment cost
/// and cleaning algorithms generally work on an owned copy, mirroring the
/// paper's protocol of producing a *cleaned version* of the dirty dataset
/// rather than mutating it in place.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.fields().iter().cloned().map(Column::new).collect();
        Table { schema, columns, n_rows: 0 }
    }

    /// Creates an empty table with row capacity `n`.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        let columns =
            schema.fields().iter().cloned().map(|f| Column::with_capacity(f, n)).collect();
        Table { schema, columns, n_rows: 0 }
    }

    /// Reassembles a table from complete columns (the artifact codec's
    /// decode path). Returns `None` when the columns are ragged or disagree
    /// with the schema.
    pub(crate) fn from_columns(schema: Schema, columns: Vec<Column>) -> Option<Table> {
        if schema.len() != columns.len() {
            return None;
        }
        let n_rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != n_rows) {
            return None;
        }
        if schema.fields().iter().zip(&columns).any(|(f, c)| f != c.meta()) {
            return None;
        }
        Some(Table { schema, columns, n_rows })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Column at `index`.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(DatasetError::ColumnOutOfBounds { index, n_columns: self.columns.len() })
    }

    /// Mutable column at `index`.
    pub fn column_mut(&mut self, index: usize) -> Result<&mut Column> {
        let n = self.columns.len();
        self.columns.get_mut(index).ok_or(DatasetError::ColumnOutOfBounds { index, n_columns: n })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        self.column(idx)
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Appends one row. The row must have one value per column, kind-checked.
    ///
    /// On arity or kind mismatch the table is left unchanged.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DatasetError::RowArity { expected: self.columns.len(), got: row.len() });
        }
        // Validate kinds first so a failed push cannot leave ragged columns.
        for (col, v) in self.columns.iter().zip(&row) {
            let ok = matches!(
                (col.kind(), v),
                (_, Value::Null)
                    | (crate::ColumnKind::Numeric, Value::Num(_))
                    | (crate::ColumnKind::Categorical, Value::Str(_))
            );
            if !ok {
                return Err(DatasetError::KindMismatch {
                    column: col.name().to_owned(),
                    expected: col.kind().name(),
                    got: v.kind_name(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v).expect("kinds pre-validated");
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Reads the cell at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> Result<Value> {
        self.column(col)?.get(row)
    }

    /// Overwrites the cell at (`row`, `col`).
    pub fn set(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        self.column_mut(col)?.set(row, value)
    }

    /// Materializes row `row` as owned values.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(DatasetError::RowOutOfBounds { index: row, n_rows: self.n_rows });
        }
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Keeps only rows where `keep[i]` is true, preserving order.
    ///
    /// # Panics
    /// Panics if `keep.len() != self.n_rows()`.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.n_rows, "retain mask length mismatch");
        for col in &mut self.columns {
            col.retain_rows(keep);
        }
        self.n_rows = keep.iter().filter(|&&k| k).count();
    }

    /// Builds a new table containing the rows at `indices`, in that order.
    /// Indices may repeat (useful for bootstrap sampling).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Table {
        for &i in indices {
            assert!(i < self.n_rows, "gather index {i} out of bounds ({} rows)", self.n_rows);
        }
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table { schema: self.schema.clone(), columns, n_rows: indices.len() }
    }

    /// Splits into (train, test) with the given test fraction, shuffling rows
    /// with a deterministic RNG seeded by `seed`. CleanML uses a 70/30 split
    /// (`test_fraction = 0.3`) across 20 seeds.
    pub fn split(&self, test_fraction: f64, seed: u64) -> Result<(Table, Table)> {
        if self.n_rows == 0 {
            return Err(DatasetError::Empty("table to split"));
        }
        let (train_idx, test_idx) = split_indices(self.n_rows, test_fraction, seed);
        Ok((self.gather(&train_idx), self.gather(&test_idx)))
    }

    /// Index of the label column.
    pub fn label_index(&self) -> Result<usize> {
        self.schema.label_index()
    }

    /// Class labels as interned categorical ids, erroring on missing labels.
    pub fn labels(&self) -> Result<Vec<u32>> {
        let idx = self.label_index()?;
        let col = self.column(idx)?;
        (0..self.n_rows)
            .map(|r| {
                col.cat_id(r).ok_or(DatasetError::Encode(format!("row {r} has a missing label")))
            })
            .collect()
    }

    /// Rows whose cell in column `col` is missing.
    pub fn missing_rows(&self, col: usize) -> Result<Vec<usize>> {
        let c = self.column(col)?;
        Ok((0..self.n_rows)
            .filter(|&r| match c.data() {
                crate::ColumnData::Numeric(v) => v[r].is_none(),
                crate::ColumnData::Categorical { values, .. } => values[r].is_none(),
            })
            .collect())
    }

    /// Total number of missing cells across feature columns.
    pub fn n_missing_cells(&self) -> usize {
        self.schema.feature_indices().into_iter().map(|i| self.columns[i].n_missing()).sum()
    }

    /// Drops every row that has at least one missing cell in a feature
    /// column. This is CleanML's "deletion" baseline for missing values
    /// (paper Table 5 treats the deleted dataset as the *dirty* version).
    pub fn drop_rows_with_missing(&self) -> Table {
        let feat = self.schema.feature_indices();
        let keep: Vec<bool> = (0..self.n_rows)
            .map(|r| {
                feat.iter().all(|&c| match self.columns[c].data() {
                    crate::ColumnData::Numeric(v) => v[r].is_some(),
                    crate::ColumnData::Categorical { values, .. } => values[r].is_some(),
                })
            })
            .collect();
        let mut t = self.clone();
        t.retain_rows(&keep);
        t
    }

    /// Per-class row counts keyed by label id (for imbalance checks and
    /// stratified mislabel injection).
    pub fn class_counts(&self) -> Result<Vec<(u32, usize)>> {
        let labels = self.labels()?;
        let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for l in labels {
            *counts.entry(l).or_insert(0) += 1;
        }
        Ok(counts.into_iter().collect())
    }
}

impl std::fmt::Display for Table {
    /// Renders the first rows as an aligned text table (debugging aid).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let max_rows = 10.min(self.n_rows);
        let header: Vec<&str> = self.schema.fields().iter().map(|m| m.name.as_str()).collect();
        writeln!(f, "{}", header.join(" | "))?;
        for r in 0..max_rows {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.get(r).map(|v| v.to_string()).unwrap_or_default())
                .collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.n_rows > max_rows {
            writeln!(f, "... ({} rows total)", self.n_rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldMeta, Schema};

    fn sample() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, c, y) in [
            (Some(1.0), Some("a"), "p"),
            (Some(2.0), Some("b"), "n"),
            (None, Some("a"), "p"),
            (Some(4.0), None, "n"),
            (Some(5.0), Some("b"), "p"),
        ] {
            t.push_row(vec![Value::from(x), Value::from(c), Value::from(y)]).unwrap();
        }
        t
    }

    #[test]
    fn push_and_get() {
        let t = sample();
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.n_columns(), 3);
        assert_eq!(t.get(0, 0).unwrap(), Value::Num(1.0));
        assert_eq!(t.get(2, 0).unwrap(), Value::Null);
        assert_eq!(t.get(1, 1).unwrap(), Value::Str("b".into()));
    }

    #[test]
    fn push_row_arity_checked() {
        let mut t = sample();
        assert!(matches!(t.push_row(vec![Value::Num(1.0)]), Err(DatasetError::RowArity { .. })));
        // failed kind check must not corrupt the table
        let before = t.n_rows();
        let bad = t.push_row(vec![Value::from("str"), Value::from("a"), Value::from("p")]);
        assert!(bad.is_err());
        assert_eq!(t.n_rows(), before);
        for c in t.columns() {
            assert_eq!(c.len(), before);
        }
    }

    #[test]
    fn missing_accounting() {
        let t = sample();
        assert_eq!(t.n_missing_cells(), 2);
        assert_eq!(t.missing_rows(0).unwrap(), vec![2]);
        assert_eq!(t.missing_rows(1).unwrap(), vec![3]);
    }

    #[test]
    fn drop_rows_with_missing_keeps_complete_rows() {
        let t = sample();
        let d = t.drop_rows_with_missing();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_missing_cells(), 0);
        // label column not considered a feature: rows only dropped for feature nulls
        assert_eq!(d.get(0, 0).unwrap(), Value::Num(1.0));
    }

    #[test]
    fn labels_and_classes() {
        let t = sample();
        let labels = t.labels().unwrap();
        assert_eq!(labels.len(), 5);
        let counts = t.class_counts().unwrap();
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 5);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let t = sample();
        let (tr1, te1) = t.split(0.4, 7).unwrap();
        let (tr2, te2) = t.split(0.4, 7).unwrap();
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.n_rows() + te1.n_rows(), t.n_rows());
        let (tr3, _) = t.split(0.4, 8).unwrap();
        // different seed should (almost surely) change the split on 5 rows
        assert!(tr3 != tr1 || t.n_rows() < 2);
    }

    #[test]
    fn gather_repeats_and_reorders() {
        let t = sample();
        let g = t.gather(&[4, 4, 0]);
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.get(0, 0).unwrap(), Value::Num(5.0));
        assert_eq!(g.get(1, 0).unwrap(), Value::Num(5.0));
        assert_eq!(g.get(2, 0).unwrap(), Value::Num(1.0));
    }

    #[test]
    fn retain_rows_mask() {
        let mut t = sample();
        t.retain_rows(&[true, false, false, false, true]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get(1, 0).unwrap(), Value::Num(5.0));
    }

    #[test]
    fn display_renders() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("x | c | y"));
    }

    #[test]
    fn empty_split_errors() {
        let t = Table::new(Schema::new(vec![FieldMeta::num_feature("x")]));
        assert!(t.split(0.3, 1).is_err());
    }
}
