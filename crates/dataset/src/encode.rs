//! Fit-on-train feature encoding into a dense matrix.
//!
//! CleanML trains scikit-learn models on structured datasets; the standard
//! preprocessing is one-hot encoding of categorical features and
//! standardization of numeric features. [`Encoder::fit`] learns the encoding
//! (means, standard deviations, category vocabularies, label classes) from a
//! *training* table only; [`Encoder::transform`] then applies it to any table
//! with the same schema — this is how the paper avoids train→test leakage.
//!
//! Missing cells are tolerated at transform time (numeric → train mean,
//! categorical → all-zero one-hot group) and flagged in the
//! [`FeatureMatrix::missing`] mask so missing-data-aware models (NaCL,
//! §VII-B of the paper) can react to them.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::column::Column;
use crate::error::DatasetError;
use crate::table::Table;
use crate::Result;

/// Dense feature matrix with class labels, stored as a flat column-major
/// arena: column `j` occupies `data[j*n_rows..(j+1)*n_rows]`, so the
/// per-feature sweeps that dominate training (threshold scans, gradient
/// accumulation, distance loops) run over contiguous memory. The CMAF wire
/// form stays canonical row-major (see [`FeatureMatrix::encode_into`]), so
/// the in-memory flip is invisible to the artifact store.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Column-major cell values.
    data: Vec<f64>,
    /// Column-major missingness mask, parallel to `data`.
    missing: Vec<bool>,
    n_rows: usize,
    n_cols: usize,
    labels: Vec<usize>,
    n_classes: usize,
    feature_names: Vec<String>,
    /// Lazily-built per-column argsort sidecar: `sorted[j]` lists row
    /// indices in ascending `(value, row)` order. Built once per matrix on
    /// first use; tree/GBDT split finding reuses it for every node (and,
    /// for GBDT, every boosting round) instead of re-sorting.
    sorted: OnceLock<Arc<Vec<Vec<u32>>>>,
    /// Lazily-built *chained* argsort sidecar (see
    /// [`FeatureMatrix::sorted_cols_chained`]).
    sorted_chain: OnceLock<Arc<Vec<Vec<u32>>>>,
}

/// Equality is over the logical matrix; the sidecar is derived state.
impl PartialEq for FeatureMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.n_classes == other.n_classes
            && self.data == other.data
            && self.missing == other.missing
            && self.labels == other.labels
            && self.feature_names == other.feature_names
    }
}

impl FeatureMatrix {
    fn from_columnar(
        data: Vec<f64>,
        missing: Vec<bool>,
        n_rows: usize,
        n_cols: usize,
        labels: Vec<usize>,
        n_classes: usize,
        feature_names: Vec<String>,
    ) -> Self {
        FeatureMatrix {
            data,
            missing,
            n_rows,
            n_cols,
            labels,
            n_classes,
            feature_names,
            sorted: OnceLock::new(),
            sorted_chain: OnceLock::new(),
        }
    }

    /// Builds a matrix from raw *row-major* parts (mainly for tests and
    /// generators); the values are transposed into the columnar arena.
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent.
    pub fn from_parts(
        data: Vec<f64>,
        n_rows: usize,
        n_cols: usize,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "data size mismatch");
        assert_eq!(labels.len(), n_rows, "label count mismatch");
        assert!(labels.iter().all(|&l| l < n_classes.max(1)), "label out of range");
        let mut col_major = vec![0.0; data.len()];
        for i in 0..n_rows {
            for j in 0..n_cols {
                col_major[j * n_rows + i] = data[i * n_cols + j];
            }
        }
        let missing = vec![false; data.len()];
        let feature_names = (0..n_cols).map(|i| format!("f{i}")).collect();
        Self::from_columnar(col_major, missing, n_rows, n_cols, labels, n_classes, feature_names)
    }

    /// Number of examples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of encoded feature dimensions.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of label classes (as observed in the fitted training table).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class index per example.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Cell value of example `i`, feature `j` (strided columnar access).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[j * self.n_rows + i]
    }

    /// Missingness of example `i`, feature `j`.
    #[inline(always)]
    pub fn missing_at(&self, i: usize, j: usize) -> bool {
        self.missing[j * self.n_rows + i]
    }

    /// Zero-copy view of feature column `j` across all examples.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.n_rows..(j + 1) * self.n_rows]
    }

    /// Zero-copy missingness view of feature column `j`.
    #[inline]
    pub fn missing_col(&self, j: usize) -> &[bool] {
        &self.missing[j * self.n_rows..(j + 1) * self.n_rows]
    }

    /// Copies the feature values of example `i` into `out`
    /// (`out.len() == n_cols`); the row-major view for per-sample kernels.
    pub fn read_row(&self, i: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_cols);
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.data[j * self.n_rows + i];
        }
    }

    /// Feature values of example `i` as an owned vector (test/debug
    /// convenience; hot paths should use [`FeatureMatrix::col`] or
    /// [`FeatureMatrix::read_row`]).
    pub fn row_vec(&self, i: usize) -> Vec<f64> {
        (0..self.n_cols).map(|j| self.at(i, j)).collect()
    }

    /// `true` if any cell of example `i` was missing before encoding.
    pub fn row_has_missing(&self, i: usize) -> bool {
        (0..self.n_cols).any(|j| self.missing_at(i, j))
    }

    /// Names of the encoded dimensions (e.g. `age`, `city=NYC`).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Flat column-major data access (column `j` at `j*n_rows..`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The per-column sorted-index sidecar: `sidecar[j]` holds every row
    /// index, ordered by ascending `(value, row)`. Built once per matrix on
    /// first use (thread-safe), then shared by reference.
    ///
    /// The `(value, row)` order is exactly what a stable sort by value
    /// produces over an ascending-index row list, which is how the
    /// tree/GBDT kernels keep their pre-refactor tie-breaking bit-for-bit.
    pub fn sorted_cols(&self) -> &Arc<Vec<Vec<u32>>> {
        self.sorted.get_or_init(|| {
            let mut all = Vec::with_capacity(self.n_cols);
            for j in 0..self.n_cols {
                let col = self.col(j);
                let mut idx: Vec<u32> = (0..self.n_rows as u32).collect();
                idx.sort_unstable_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                all.push(idx);
            }
            Arc::new(all)
        })
    }

    /// The *chained* sorted-index sidecar: `sidecar[j]` is the identity
    /// permutation stably sorted by column 0, then 1, … then `j` — i.e.
    /// ascending by `(col_j, col_{j-1}, …, col_0, row)` lexicographically.
    ///
    /// This reproduces the exact tie order of a split finder that keeps one
    /// scratch `order` buffer and re-sorts it stably per feature without
    /// resetting (the pre-columnar GBDT kernel): since stable sorting
    /// commutes with order-preserving subset restriction, a node's chained
    /// order is the membership-filtered global chained order, so partitions
    /// of these lists keep GBDT's gradient sweeps bit-for-bit.
    pub fn sorted_cols_chained(&self) -> &Arc<Vec<Vec<u32>>> {
        self.sorted_chain.get_or_init(|| {
            let mut all = Vec::with_capacity(self.n_cols);
            let mut ord: Vec<u32> = (0..self.n_rows as u32).collect();
            for j in 0..self.n_cols {
                let col = self.col(j);
                // stable: ties keep the previous chain order
                ord.sort_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                all.push(ord.clone());
            }
            Arc::new(all)
        })
    }

    /// New matrix containing the examples at `indices`, in order. Indices may
    /// repeat (bootstrap sampling). Gathered column-by-column.
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let n = indices.len();
        let mut data = Vec::with_capacity(n * self.n_cols);
        let mut missing = Vec::with_capacity(n * self.n_cols);
        for j in 0..self.n_cols {
            let col = self.col(j);
            let mcol = self.missing_col(j);
            for &i in indices {
                data.push(col[i]);
                missing.push(mcol[i]);
            }
        }
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Self::from_columnar(
            data,
            missing,
            n,
            self.n_cols,
            labels,
            self.n_classes,
            self.feature_names.clone(),
        )
    }

    /// Gathers two row subsets in one pass over each source column —
    /// the CV fold plane's train/val pair. Bit-identical to two
    /// [`FeatureMatrix::select_rows`] calls (each output is gathered
    /// column-by-column in the given index order); fusing them halves the
    /// number of passes over the source arena when materializing a fold.
    pub fn select_rows_pair(&self, a: &[usize], b: &[usize]) -> (FeatureMatrix, FeatureMatrix) {
        let (na, nb) = (a.len(), b.len());
        let mut data_a = Vec::with_capacity(na * self.n_cols);
        let mut missing_a = Vec::with_capacity(na * self.n_cols);
        let mut data_b = Vec::with_capacity(nb * self.n_cols);
        let mut missing_b = Vec::with_capacity(nb * self.n_cols);
        for j in 0..self.n_cols {
            let col = self.col(j);
            let mcol = self.missing_col(j);
            for &i in a {
                data_a.push(col[i]);
                missing_a.push(mcol[i]);
            }
            for &i in b {
                data_b.push(col[i]);
                missing_b.push(mcol[i]);
            }
        }
        let labels_a = a.iter().map(|&i| self.labels[i]).collect();
        let labels_b = b.iter().map(|&i| self.labels[i]).collect();
        let ma = Self::from_columnar(
            data_a,
            missing_a,
            na,
            self.n_cols,
            labels_a,
            self.n_classes,
            self.feature_names.clone(),
        );
        let mb = Self::from_columnar(
            data_b,
            missing_b,
            nb,
            self.n_cols,
            labels_b,
            self.n_classes,
            self.feature_names.clone(),
        );
        (ma, mb)
    }

    /// Appends the matrix to an artifact byte stream (see [`crate::codec`]).
    /// Floats are written as raw bit patterns; the missingness mask is
    /// written sparsely (index list) since encoded matrices are mostly
    /// complete.
    ///
    /// **Wire-order invariant:** cells and missing indices are written in
    /// canonical *row-major* order (flat index `i*n_cols + j`) regardless of
    /// the columnar in-memory layout, so artifacts produced before the
    /// columnar refactor decode unchanged and vice versa — no store
    /// invalidation, no format bump.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{push_f64_compact, push_str, push_tag, push_usize};
        push_tag(out, b'M');
        push_usize(out, self.n_rows);
        push_usize(out, self.n_cols);
        push_usize(out, self.n_classes);
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                // one-hot dimensions dominate encoded matrices, so the 0/1
                // compact form shrinks the biggest artifact class ~5×
                push_f64_compact(out, self.at(i, j));
            }
        }
        let mut missing: Vec<usize> = Vec::new();
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                if self.missing_at(i, j) {
                    missing.push(i * self.n_cols + j);
                }
            }
        }
        push_usize(out, missing.len());
        for i in missing {
            push_usize(out, i);
        }
        for &l in &self.labels {
            push_usize(out, l);
        }
        for name in &self.feature_names {
            push_str(out, name);
        }
    }

    /// Reads a matrix written by [`FeatureMatrix::encode_into`]; `None` on
    /// any truncation or inconsistency.
    pub fn decode_from(r: &mut crate::codec::Reader<'_>) -> Option<FeatureMatrix> {
        use crate::codec::{expect, take_f64_compact, take_str, take_usize};
        expect(r, b'M')?;
        let n_rows = take_usize(r)?;
        let n_cols = take_usize(r)?;
        let n_classes = take_usize(r)?;
        let cells = n_rows.checked_mul(n_cols)?;
        if cells > (1 << 32) {
            return None; // far beyond any real study matrix: corrupt sizes
        }
        // Capacities are clamped: a corrupt size token must decode to
        // `None` (when its cells never materialize in the stream), not
        // abort the process on a huge up-front allocation.
        // Cells round-trip the full f64 domain: a source table can
        // legitimately carry non-finite numerics (an unquoted `inf` CSV
        // cell standardizes to inf), and an artifact that encodes but
        // never decodes would silently turn every warm resume of that
        // dataset into a re-run. Corruption is the frame checksum's job.
        // The stream is row-major (the canonical wire order). Stage it in
        // that order — capacity clamped, growing only as cells actually
        // materialize — then transpose into the columnar arena once the
        // stream has proven the sizes honest.
        let mut staged = Vec::with_capacity(cells.min(1 << 20));
        for _ in 0..cells {
            staged.push(take_f64_compact(r)?);
        }
        let mut data = vec![0.0; cells];
        for i in 0..n_rows {
            for j in 0..n_cols {
                data[j * n_rows + i] = staged[i * n_cols + j];
            }
        }
        let mut missing = vec![false; cells];
        let n_missing = take_usize(r)?;
        for _ in 0..n_missing {
            let flat = take_usize(r)?;
            if n_cols == 0 || flat >= cells {
                return None;
            }
            let (i, j) = (flat / n_cols, flat % n_cols);
            missing[j * n_rows + i] = true;
        }
        let mut labels = Vec::with_capacity(n_rows.min(1 << 20));
        for _ in 0..n_rows {
            let l = take_usize(r)?;
            if l >= n_classes.max(1) {
                return None;
            }
            labels.push(l);
        }
        let mut feature_names = Vec::with_capacity(n_cols.min(1 << 20));
        for _ in 0..n_cols {
            feature_names.push(take_str(r)?);
        }
        Some(Self::from_columnar(data, missing, n_rows, n_cols, labels, n_classes, feature_names))
    }
}

#[derive(Debug, Clone, PartialEq)]
struct NumSpec {
    col: usize,
    mean: f64,
    std: f64,
}

#[derive(Debug, Clone, PartialEq)]
struct CatSpec {
    col: usize,
    /// Category strings kept as one-hot dimensions (top-`max_onehot` by
    /// training frequency). Unseen or overflow categories encode to all-zero.
    categories: Vec<String>,
}

/// Learned feature/label encoding. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    numeric: Vec<NumSpec>,
    categorical: Vec<CatSpec>,
    label_col: usize,
    label_classes: Vec<String>,
    n_cols: usize,
    feature_names: Vec<String>,
}

/// Cap on one-hot dimensions per categorical column; higher-cardinality
/// columns keep their most frequent categories and bucket the rest.
pub const DEFAULT_MAX_ONEHOT: usize = 20;

impl Encoder {
    /// Learns the encoding from a training table with the default one-hot cap.
    pub fn fit(train: &Table) -> Result<Encoder> {
        Self::fit_with(train, DEFAULT_MAX_ONEHOT)
    }

    /// Like [`Encoder::fit`], but with an explicit label-class vocabulary.
    ///
    /// The study runner uses this so that a training partition that happens
    /// to lose a class (e.g. after deletion-repair of missing values) still
    /// encodes test rows of that class instead of erroring, and so the class
    /// indices (and the F1 positive class) stay identical across every
    /// cleaned variant of a dataset. `classes` is deduplicated and sorted;
    /// it must cover every label observed at fit or transform time.
    pub fn fit_with_classes(train: &Table, classes: &[String]) -> Result<Encoder> {
        let mut enc = Self::fit_with(train, DEFAULT_MAX_ONEHOT)?;
        let mut classes: Vec<String> = classes.to_vec();
        classes.sort();
        classes.dedup();
        if classes.is_empty() {
            return Err(DatasetError::Encode("empty label class list".into()));
        }
        for observed in &enc.label_classes {
            if !classes.contains(observed) {
                return Err(DatasetError::Encode(format!(
                    "observed label `{observed}` missing from supplied classes"
                )));
            }
        }
        enc.label_classes = classes;
        Ok(enc)
    }

    /// Learns the encoding from a training table, keeping at most
    /// `max_onehot` one-hot dimensions per categorical feature.
    pub fn fit_with(train: &Table, max_onehot: usize) -> Result<Encoder> {
        if train.is_empty() {
            return Err(DatasetError::Empty("training table for encoder"));
        }
        let schema = train.schema();
        let label_col = schema.label_index()?;

        let mut numeric = Vec::new();
        for col in schema.numeric_feature_indices() {
            let c = train.column(col)?;
            let mean = crate::stats::mean(c).unwrap_or(0.0);
            let std = crate::stats::std_dev(c).unwrap_or(0.0);
            numeric.push(NumSpec { col, mean, std });
        }

        let mut categorical = Vec::new();
        for col in schema.categorical_feature_indices() {
            let c = train.column(col)?;
            let counts = c.category_counts();
            let mut by_freq: Vec<(usize, usize)> =
                counts.iter().enumerate().filter(|(_, &n)| n > 0).map(|(id, &n)| (id, n)).collect();
            // most frequent first; ties broken by first-seen id for determinism
            by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            by_freq.truncate(max_onehot);
            let categories = by_freq
                .into_iter()
                .map(|(id, _)| c.dict_str(id as u32).expect("id from counts").to_owned())
                .collect();
            categorical.push(CatSpec { col, categories });
        }

        let label_classes = Self::collect_label_classes(train.column(label_col)?)?;

        let mut feature_names = Vec::new();
        for spec in &numeric {
            feature_names.push(schema.field(spec.col)?.name.clone());
        }
        for spec in &categorical {
            let base = &schema.field(spec.col)?.name;
            for cat in &spec.categories {
                feature_names.push(format!("{base}={cat}"));
            }
        }
        let n_cols = feature_names.len();
        if n_cols == 0 {
            return Err(DatasetError::Encode("no feature columns to encode".into()));
        }

        Ok(Encoder { numeric, categorical, label_col, label_classes, n_cols, feature_names })
    }

    fn collect_label_classes(label: &Column) -> Result<Vec<String>> {
        let counts = label.category_counts();
        let mut classes: Vec<String> = counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(id, _)| label.dict_str(id as u32).expect("id from counts").to_owned())
            .collect();
        classes.sort();
        if classes.is_empty() {
            return Err(DatasetError::Encode("label column has no observed classes".into()));
        }
        Ok(classes)
    }

    /// Number of encoded feature dimensions.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Label classes in encoding order (class index = position here).
    pub fn label_classes(&self) -> &[String] {
        &self.label_classes
    }

    /// Encodes `table` with the learned statistics.
    ///
    /// Rows whose label is missing or was never seen at fit time are
    /// rejected — CleanML never evaluates on unlabeled rows.
    pub fn transform(&self, table: &Table) -> Result<FeatureMatrix> {
        let n_rows = table.n_rows();
        let mut data = vec![0.0; n_rows * self.n_cols];
        let mut missing = vec![false; n_rows * self.n_cols];
        let mut labels = Vec::with_capacity(n_rows);

        let class_index: HashMap<&str, usize> =
            self.label_classes.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();

        let label_col = table.column(self.label_col)?;

        // Pre-resolve categorical dictionaries for the table being encoded.
        let cat_lookup: Vec<HashMap<&str, usize>> = self
            .categorical
            .iter()
            .map(|spec| {
                spec.categories.iter().enumerate().map(|(slot, s)| (s.as_str(), slot)).collect()
            })
            .collect();

        // Each source column fills a contiguous stripe of the arena.
        let mut j = 0usize;
        for spec in &self.numeric {
            let c = table.column(spec.col)?;
            let (dcol, mcol) = (j * n_rows, j * n_rows);
            for r in 0..n_rows {
                match c.num(r) {
                    Some(x) => {
                        data[dcol + r] =
                            if spec.std > 0.0 { (x - spec.mean) / spec.std } else { 0.0 };
                    }
                    None => {
                        // standardized train mean stays 0.0
                        missing[mcol + r] = true;
                    }
                }
            }
            j += 1;
        }
        for (spec, lookup) in self.categorical.iter().zip(&cat_lookup) {
            let c = table.column(spec.col)?;
            for r in 0..n_rows {
                let cell = c.cat_str(r);
                let hot = cell.and_then(|s| lookup.get(s).copied());
                let is_missing = cell.is_none();
                for slot in 0..spec.categories.len() {
                    if hot == Some(slot) {
                        data[(j + slot) * n_rows + r] = 1.0;
                    }
                    if is_missing {
                        missing[(j + slot) * n_rows + r] = true;
                    }
                }
            }
            j += spec.categories.len();
        }
        debug_assert_eq!(j, self.n_cols);

        for r in 0..n_rows {
            let label_str = label_col
                .cat_str(r)
                .ok_or_else(|| DatasetError::Encode(format!("row {r} has a missing label")))?;
            let class = class_index.get(label_str).copied().ok_or_else(|| {
                DatasetError::Encode(format!("label `{label_str}` not seen during fit"))
            })?;
            labels.push(class);
        }

        Ok(FeatureMatrix::from_columnar(
            data,
            missing,
            n_rows,
            self.n_cols,
            labels,
            self.label_classes.len(),
            self.feature_names.clone(),
        ))
    }

    /// Appends the fitted encoder to an artifact byte stream (see
    /// [`crate::codec`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{push_f64, push_str, push_tag, push_usize};
        push_tag(out, b'E');
        push_usize(out, self.label_col);
        push_usize(out, self.n_cols);
        push_usize(out, self.numeric.len());
        for spec in &self.numeric {
            push_usize(out, spec.col);
            push_f64(out, spec.mean);
            push_f64(out, spec.std);
        }
        push_usize(out, self.categorical.len());
        for spec in &self.categorical {
            push_usize(out, spec.col);
            push_usize(out, spec.categories.len());
            for cat in &spec.categories {
                push_str(out, cat);
            }
        }
        push_usize(out, self.label_classes.len());
        for class in &self.label_classes {
            push_str(out, class);
        }
        for name in &self.feature_names {
            push_str(out, name);
        }
    }

    /// Reads an encoder written by [`Encoder::encode_into`].
    pub fn decode_from(r: &mut crate::codec::Reader<'_>) -> Option<Encoder> {
        use crate::codec::{expect, take_f64, take_str, take_usize};
        expect(r, b'E')?;
        let label_col = take_usize(r)?;
        let n_cols = take_usize(r)?;
        let n_numeric = take_usize(r)?;
        let mut numeric = Vec::with_capacity(n_numeric.min(1 << 20));
        for _ in 0..n_numeric {
            let col = take_usize(r)?;
            let mean = take_f64(r)?;
            let std = take_f64(r)?;
            numeric.push(NumSpec { col, mean, std });
        }
        let n_cat = take_usize(r)?;
        let mut categorical = Vec::with_capacity(n_cat.min(1 << 20));
        for _ in 0..n_cat {
            let col = take_usize(r)?;
            let n_categories = take_usize(r)?;
            let mut categories = Vec::with_capacity(n_categories.min(1 << 20));
            for _ in 0..n_categories {
                categories.push(take_str(r)?);
            }
            categorical.push(CatSpec { col, categories });
        }
        let n_classes = take_usize(r)?;
        let mut label_classes = Vec::with_capacity(n_classes.min(1 << 20));
        for _ in 0..n_classes {
            label_classes.push(take_str(r)?);
        }
        let mut feature_names = Vec::with_capacity(n_cols.min(1 << 20));
        for _ in 0..n_cols {
            feature_names.push(take_str(r)?);
        }
        Some(Encoder { numeric, categorical, label_col, label_classes, n_cols, feature_names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldMeta, Schema};
    use crate::value::Value;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, c, y) in [
            (Some(1.0), Some("a"), "p"),
            (Some(3.0), Some("b"), "n"),
            (Some(5.0), Some("a"), "p"),
            (None, None, "n"),
        ] {
            t.push_row(vec![Value::from(x), Value::from(c), Value::from(y)]).unwrap();
        }
        t
    }

    #[test]
    fn fit_transform_shapes() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        assert_eq!(enc.n_cols(), 3); // x + c=a + c=b
        let m = enc.transform(&t).unwrap();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.labels().len(), 4);
        assert_eq!(m.feature_names()[0], "x");
        assert!(m.feature_names().contains(&"c=a".to_string()));
    }

    #[test]
    fn standardization_uses_train_stats() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        // x values 1,3,5 -> mean 3, pop std sqrt(8/3)
        let std = (8.0f64 / 3.0).sqrt();
        assert!((m.at(0, 0) - (1.0 - 3.0) / std).abs() < 1e-12);
        assert!((m.at(1, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn missing_cells_flagged_and_neutral() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        assert!(m.row_has_missing(3));
        assert!(!m.row_has_missing(0));
        assert_eq!(m.at(3, 0), 0.0); // mean-standardized
        assert_eq!(m.at(3, 1), 0.0); // one-hot zeros
        assert_eq!(m.at(3, 2), 0.0);
        assert!((0..m.n_cols()).all(|j| m.missing_at(3, j)));
    }

    #[test]
    fn labels_sorted_stable() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        assert_eq!(enc.label_classes(), &["n".to_string(), "p".to_string()]);
        let m = enc.transform(&t).unwrap();
        assert_eq!(m.labels(), &[1, 0, 1, 0]);
    }

    #[test]
    fn unseen_label_rejected() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let schema = t.schema().clone();
        let mut t2 = Table::new(schema);
        t2.push_row(vec![Value::from(1.0), Value::from("a"), Value::from("zzz")]).unwrap();
        assert!(enc.transform(&t2).is_err());
    }

    #[test]
    fn onehot_cap_respected() {
        let schema = Schema::new(vec![FieldMeta::cat_feature("c"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.push_row(vec![Value::from(format!("cat{i}")), Value::from("p")]).unwrap();
        }
        t.push_row(vec![Value::from("cat0"), Value::from("n")]).unwrap();
        let enc = Encoder::fit_with(&t, 5).unwrap();
        assert_eq!(enc.n_cols(), 5);
        let m = enc.transform(&t).unwrap();
        // "cat0" appears twice -> most frequent -> kept
        assert_eq!(m.at(0, 0), 1.0);
    }

    #[test]
    fn select_rows_subsets() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.row_vec(0), m.row_vec(2));
        assert_eq!(s.row_vec(1), m.row_vec(0));
        assert_eq!(s.labels(), &[m.labels()[2], m.labels()[0], m.labels()[2]]);
    }

    #[test]
    fn select_rows_pair_matches_two_selects() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        let (train_idx, val_idx) = (vec![0usize, 2, 3], vec![1usize, 3]);
        let (a, b) = m.select_rows_pair(&train_idx, &val_idx);
        let (ra, rb) = (m.select_rows(&train_idx), m.select_rows(&val_idx));
        assert_eq!(a.data(), ra.data());
        assert_eq!(a.labels(), ra.labels());
        assert_eq!(b.data(), rb.data());
        assert_eq!(b.labels(), rb.labels());
        assert_eq!(
            (0..a.n_rows()).map(|i| a.row_has_missing(i)).collect::<Vec<_>>(),
            (0..ra.n_rows()).map(|i| ra.row_has_missing(i)).collect::<Vec<_>>(),
        );
        // empty side stays well-formed
        let (e, f) = m.select_rows_pair(&[], &[1]);
        assert_eq!(e.n_rows(), 0);
        assert_eq!(f.row_vec(0), m.row_vec(1));
    }

    #[test]
    fn from_parts_valid() {
        let m = FeatureMatrix::from_parts(vec![1.0, 2.0, 3.0, 4.0], 2, 2, vec![0, 1], 2);
        assert_eq!(m.row_vec(1), vec![3.0, 4.0]);
        // from_parts takes row-major input; the arena stores columns
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn sorted_sidecar_orders_by_value_then_row() {
        let m = FeatureMatrix::from_parts(
            vec![2.0, 0.0, 1.0, 1.0, 2.0, 0.0, 1.0, 1.0],
            4,
            2,
            vec![0, 1, 0, 1],
            2,
        );
        let sc = m.sorted_cols();
        // col 0 = [2,1,2,1]: ties broken by ascending row
        assert_eq!(sc[0], vec![1, 3, 0, 2]);
        // col 1 = [0,1,0,1]
        assert_eq!(sc[1], vec![0, 2, 1, 3]);
        // the sidecar is built once and shared
        assert!(Arc::ptr_eq(m.sorted_cols(), sc));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn from_parts_bad_labels() {
        FeatureMatrix::from_parts(vec![1.0, 2.0], 2, 1, vec![0, 5], 2);
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let t = Table::new(schema);
        assert!(Encoder::fit(&t).is_err());
    }

    #[test]
    fn explicit_classes_cover_unobserved_labels() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let mut train = Table::new(schema.clone());
        train.push_row(vec![Value::from(1.0), Value::from("p")]).unwrap();
        train.push_row(vec![Value::from(2.0), Value::from("p")]).unwrap();
        // "n" never observed in train but declared up front.
        let enc = Encoder::fit_with_classes(&train, &["p".to_string(), "n".to_string()]).unwrap();
        assert_eq!(enc.label_classes(), &["n".to_string(), "p".to_string()]);
        let mut test = Table::new(schema);
        test.push_row(vec![Value::from(3.0), Value::from("n")]).unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.labels(), &[0]);
        assert_eq!(m.n_classes(), 2);
    }

    #[test]
    fn explicit_classes_must_cover_observed() {
        let t = sample();
        assert!(Encoder::fit_with_classes(&t, &["p".to_string()]).is_err());
        assert!(Encoder::fit_with_classes(&t, &[]).is_err());
    }

    #[test]
    fn matrix_codec_round_trips_exactly() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        assert!(m.missing.iter().any(|&b| b), "sample exercises the missing mask");
        let mut out = Vec::new();
        m.encode_into(&mut out);
        let mut r = crate::codec::Reader::new(&out);
        let back = FeatureMatrix::decode_from(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(back, m);
        // corrupt/truncated streams are rejected, not mis-decoded
        assert!(FeatureMatrix::decode_from(&mut crate::codec::Reader::new(b"M1")).is_none());
        let cut = &out[..out.len() - 3];
        assert!(FeatureMatrix::decode_from(&mut crate::codec::Reader::new(cut)).is_none());
    }

    #[test]
    fn encoder_codec_round_trips_exactly() {
        let t = sample();
        let enc = Encoder::fit_with_classes(&t, &["p".into(), "n".into(), "extra".into()]).unwrap();
        let mut out = Vec::new();
        enc.encode_into(&mut out);
        let mut r = crate::codec::Reader::new(&out);
        let back = Encoder::decode_from(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(back, enc);
        // the decoded encoder transforms identically
        assert_eq!(back.transform(&t).unwrap(), enc.transform(&t).unwrap());
        assert!(Encoder::decode_from(&mut crate::codec::Reader::new(b"E0")).is_none());
    }
}
