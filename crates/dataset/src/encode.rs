//! Fit-on-train feature encoding into a dense matrix.
//!
//! CleanML trains scikit-learn models on structured datasets; the standard
//! preprocessing is one-hot encoding of categorical features and
//! standardization of numeric features. [`Encoder::fit`] learns the encoding
//! (means, standard deviations, category vocabularies, label classes) from a
//! *training* table only; [`Encoder::transform`] then applies it to any table
//! with the same schema — this is how the paper avoids train→test leakage.
//!
//! Missing cells are tolerated at transform time (numeric → train mean,
//! categorical → all-zero one-hot group) and flagged in the
//! [`FeatureMatrix::missing`] mask so missing-data-aware models (NaCL,
//! §VII-B of the paper) can react to them.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::DatasetError;
use crate::table::Table;
use crate::Result;

/// Dense row-major feature matrix with class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    missing: Vec<bool>,
    n_rows: usize,
    n_cols: usize,
    labels: Vec<usize>,
    n_classes: usize,
    feature_names: Vec<String>,
}

impl FeatureMatrix {
    /// Builds a matrix from raw parts (mainly for tests and generators).
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent.
    pub fn from_parts(
        data: Vec<f64>,
        n_rows: usize,
        n_cols: usize,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "data size mismatch");
        assert_eq!(labels.len(), n_rows, "label count mismatch");
        assert!(labels.iter().all(|&l| l < n_classes.max(1)), "label out of range");
        let missing = vec![false; data.len()];
        let feature_names = (0..n_cols).map(|i| format!("f{i}")).collect();
        FeatureMatrix { data, missing, n_rows, n_cols, labels, n_classes, feature_names }
    }

    /// Number of examples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of encoded feature dimensions.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of label classes (as observed in the fitted training table).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class index per example.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature values of example `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Missingness flags of example `i` (parallel to [`FeatureMatrix::row`]).
    pub fn missing_row(&self, i: usize) -> &[bool] {
        &self.missing[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// `true` if any cell of example `i` was missing before encoding.
    pub fn row_has_missing(&self, i: usize) -> bool {
        self.missing_row(i).iter().any(|&m| m)
    }

    /// Names of the encoded dimensions (e.g. `age`, `city=NYC`).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Flat row-major data access.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// New matrix containing the examples at `indices`, in order. Indices may
    /// repeat (bootstrap sampling).
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.n_cols);
        let mut missing = Vec::with_capacity(indices.len() * self.n_cols);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.row(i));
            missing.extend_from_slice(self.missing_row(i));
            labels.push(self.labels[i]);
        }
        FeatureMatrix {
            data,
            missing,
            n_rows: indices.len(),
            n_cols: self.n_cols,
            labels,
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Appends the matrix to an artifact byte stream (see [`crate::codec`]).
    /// Floats are written as raw bit patterns; the missingness mask is
    /// written sparsely (index list) since encoded matrices are mostly
    /// complete.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{push_f64_compact, push_str, push_tag, push_usize};
        push_tag(out, b'M');
        push_usize(out, self.n_rows);
        push_usize(out, self.n_cols);
        push_usize(out, self.n_classes);
        for &x in &self.data {
            // one-hot dimensions dominate encoded matrices, so the 0/1
            // compact form shrinks the biggest artifact class ~5×
            push_f64_compact(out, x);
        }
        let missing: Vec<usize> =
            self.missing.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
        push_usize(out, missing.len());
        for i in missing {
            push_usize(out, i);
        }
        for &l in &self.labels {
            push_usize(out, l);
        }
        for name in &self.feature_names {
            push_str(out, name);
        }
    }

    /// Reads a matrix written by [`FeatureMatrix::encode_into`]; `None` on
    /// any truncation or inconsistency.
    pub fn decode_from(r: &mut crate::codec::Reader<'_>) -> Option<FeatureMatrix> {
        use crate::codec::{expect, take_f64_compact, take_str, take_usize};
        expect(r, b'M')?;
        let n_rows = take_usize(r)?;
        let n_cols = take_usize(r)?;
        let n_classes = take_usize(r)?;
        let cells = n_rows.checked_mul(n_cols)?;
        if cells > (1 << 32) {
            return None; // far beyond any real study matrix: corrupt sizes
        }
        // Capacities are clamped: a corrupt size token must decode to
        // `None` (when its cells never materialize in the stream), not
        // abort the process on a huge up-front allocation.
        // Cells round-trip the full f64 domain: a source table can
        // legitimately carry non-finite numerics (an unquoted `inf` CSV
        // cell standardizes to inf), and an artifact that encodes but
        // never decodes would silently turn every warm resume of that
        // dataset into a re-run. Corruption is the frame checksum's job.
        let mut data = Vec::with_capacity(cells.min(1 << 20));
        for _ in 0..cells {
            data.push(take_f64_compact(r)?);
        }
        let mut missing = vec![false; cells];
        let n_missing = take_usize(r)?;
        for _ in 0..n_missing {
            let i = take_usize(r)?;
            *missing.get_mut(i)? = true;
        }
        let mut labels = Vec::with_capacity(n_rows.min(1 << 20));
        for _ in 0..n_rows {
            let l = take_usize(r)?;
            if l >= n_classes.max(1) {
                return None;
            }
            labels.push(l);
        }
        let mut feature_names = Vec::with_capacity(n_cols.min(1 << 20));
        for _ in 0..n_cols {
            feature_names.push(take_str(r)?);
        }
        Some(FeatureMatrix { data, missing, n_rows, n_cols, labels, n_classes, feature_names })
    }
}

#[derive(Debug, Clone, PartialEq)]
struct NumSpec {
    col: usize,
    mean: f64,
    std: f64,
}

#[derive(Debug, Clone, PartialEq)]
struct CatSpec {
    col: usize,
    /// Category strings kept as one-hot dimensions (top-`max_onehot` by
    /// training frequency). Unseen or overflow categories encode to all-zero.
    categories: Vec<String>,
}

/// Learned feature/label encoding. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    numeric: Vec<NumSpec>,
    categorical: Vec<CatSpec>,
    label_col: usize,
    label_classes: Vec<String>,
    n_cols: usize,
    feature_names: Vec<String>,
}

/// Cap on one-hot dimensions per categorical column; higher-cardinality
/// columns keep their most frequent categories and bucket the rest.
pub const DEFAULT_MAX_ONEHOT: usize = 20;

impl Encoder {
    /// Learns the encoding from a training table with the default one-hot cap.
    pub fn fit(train: &Table) -> Result<Encoder> {
        Self::fit_with(train, DEFAULT_MAX_ONEHOT)
    }

    /// Like [`Encoder::fit`], but with an explicit label-class vocabulary.
    ///
    /// The study runner uses this so that a training partition that happens
    /// to lose a class (e.g. after deletion-repair of missing values) still
    /// encodes test rows of that class instead of erroring, and so the class
    /// indices (and the F1 positive class) stay identical across every
    /// cleaned variant of a dataset. `classes` is deduplicated and sorted;
    /// it must cover every label observed at fit or transform time.
    pub fn fit_with_classes(train: &Table, classes: &[String]) -> Result<Encoder> {
        let mut enc = Self::fit_with(train, DEFAULT_MAX_ONEHOT)?;
        let mut classes: Vec<String> = classes.to_vec();
        classes.sort();
        classes.dedup();
        if classes.is_empty() {
            return Err(DatasetError::Encode("empty label class list".into()));
        }
        for observed in &enc.label_classes {
            if !classes.contains(observed) {
                return Err(DatasetError::Encode(format!(
                    "observed label `{observed}` missing from supplied classes"
                )));
            }
        }
        enc.label_classes = classes;
        Ok(enc)
    }

    /// Learns the encoding from a training table, keeping at most
    /// `max_onehot` one-hot dimensions per categorical feature.
    pub fn fit_with(train: &Table, max_onehot: usize) -> Result<Encoder> {
        if train.is_empty() {
            return Err(DatasetError::Empty("training table for encoder"));
        }
        let schema = train.schema();
        let label_col = schema.label_index()?;

        let mut numeric = Vec::new();
        for col in schema.numeric_feature_indices() {
            let c = train.column(col)?;
            let mean = crate::stats::mean(c).unwrap_or(0.0);
            let std = crate::stats::std_dev(c).unwrap_or(0.0);
            numeric.push(NumSpec { col, mean, std });
        }

        let mut categorical = Vec::new();
        for col in schema.categorical_feature_indices() {
            let c = train.column(col)?;
            let counts = c.category_counts();
            let mut by_freq: Vec<(usize, usize)> =
                counts.iter().enumerate().filter(|(_, &n)| n > 0).map(|(id, &n)| (id, n)).collect();
            // most frequent first; ties broken by first-seen id for determinism
            by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            by_freq.truncate(max_onehot);
            let categories = by_freq
                .into_iter()
                .map(|(id, _)| c.dict_str(id as u32).expect("id from counts").to_owned())
                .collect();
            categorical.push(CatSpec { col, categories });
        }

        let label_classes = Self::collect_label_classes(train.column(label_col)?)?;

        let mut feature_names = Vec::new();
        for spec in &numeric {
            feature_names.push(schema.field(spec.col)?.name.clone());
        }
        for spec in &categorical {
            let base = &schema.field(spec.col)?.name;
            for cat in &spec.categories {
                feature_names.push(format!("{base}={cat}"));
            }
        }
        let n_cols = feature_names.len();
        if n_cols == 0 {
            return Err(DatasetError::Encode("no feature columns to encode".into()));
        }

        Ok(Encoder { numeric, categorical, label_col, label_classes, n_cols, feature_names })
    }

    fn collect_label_classes(label: &Column) -> Result<Vec<String>> {
        let counts = label.category_counts();
        let mut classes: Vec<String> = counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(id, _)| label.dict_str(id as u32).expect("id from counts").to_owned())
            .collect();
        classes.sort();
        if classes.is_empty() {
            return Err(DatasetError::Encode("label column has no observed classes".into()));
        }
        Ok(classes)
    }

    /// Number of encoded feature dimensions.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Label classes in encoding order (class index = position here).
    pub fn label_classes(&self) -> &[String] {
        &self.label_classes
    }

    /// Encodes `table` with the learned statistics.
    ///
    /// Rows whose label is missing or was never seen at fit time are
    /// rejected — CleanML never evaluates on unlabeled rows.
    pub fn transform(&self, table: &Table) -> Result<FeatureMatrix> {
        let n_rows = table.n_rows();
        let mut data = Vec::with_capacity(n_rows * self.n_cols);
        let mut missing = Vec::with_capacity(n_rows * self.n_cols);
        let mut labels = Vec::with_capacity(n_rows);

        let class_index: HashMap<&str, usize> =
            self.label_classes.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();

        let label_col = table.column(self.label_col)?;

        // Pre-resolve categorical dictionaries for the table being encoded.
        let cat_lookup: Vec<HashMap<&str, usize>> = self
            .categorical
            .iter()
            .map(|spec| {
                spec.categories.iter().enumerate().map(|(slot, s)| (s.as_str(), slot)).collect()
            })
            .collect();

        for r in 0..n_rows {
            for spec in &self.numeric {
                let c = table.column(spec.col)?;
                match c.num(r) {
                    Some(x) => {
                        let z = if spec.std > 0.0 { (x - spec.mean) / spec.std } else { 0.0 };
                        data.push(z);
                        missing.push(false);
                    }
                    None => {
                        data.push(0.0); // standardized train mean
                        missing.push(true);
                    }
                }
            }
            for (spec, lookup) in self.categorical.iter().zip(&cat_lookup) {
                let c = table.column(spec.col)?;
                let cell = c.cat_str(r);
                let hot = cell.and_then(|s| lookup.get(s).copied());
                let is_missing = cell.is_none();
                for slot in 0..spec.categories.len() {
                    data.push(if hot == Some(slot) { 1.0 } else { 0.0 });
                    missing.push(is_missing);
                }
            }
            let label_str = label_col
                .cat_str(r)
                .ok_or_else(|| DatasetError::Encode(format!("row {r} has a missing label")))?;
            let class = class_index.get(label_str).copied().ok_or_else(|| {
                DatasetError::Encode(format!("label `{label_str}` not seen during fit"))
            })?;
            labels.push(class);
        }

        Ok(FeatureMatrix {
            data,
            missing,
            n_rows,
            n_cols: self.n_cols,
            labels,
            n_classes: self.label_classes.len(),
            feature_names: self.feature_names.clone(),
        })
    }

    /// Appends the fitted encoder to an artifact byte stream (see
    /// [`crate::codec`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{push_f64, push_str, push_tag, push_usize};
        push_tag(out, b'E');
        push_usize(out, self.label_col);
        push_usize(out, self.n_cols);
        push_usize(out, self.numeric.len());
        for spec in &self.numeric {
            push_usize(out, spec.col);
            push_f64(out, spec.mean);
            push_f64(out, spec.std);
        }
        push_usize(out, self.categorical.len());
        for spec in &self.categorical {
            push_usize(out, spec.col);
            push_usize(out, spec.categories.len());
            for cat in &spec.categories {
                push_str(out, cat);
            }
        }
        push_usize(out, self.label_classes.len());
        for class in &self.label_classes {
            push_str(out, class);
        }
        for name in &self.feature_names {
            push_str(out, name);
        }
    }

    /// Reads an encoder written by [`Encoder::encode_into`].
    pub fn decode_from(r: &mut crate::codec::Reader<'_>) -> Option<Encoder> {
        use crate::codec::{expect, take_f64, take_str, take_usize};
        expect(r, b'E')?;
        let label_col = take_usize(r)?;
        let n_cols = take_usize(r)?;
        let n_numeric = take_usize(r)?;
        let mut numeric = Vec::with_capacity(n_numeric.min(1 << 20));
        for _ in 0..n_numeric {
            let col = take_usize(r)?;
            let mean = take_f64(r)?;
            let std = take_f64(r)?;
            numeric.push(NumSpec { col, mean, std });
        }
        let n_cat = take_usize(r)?;
        let mut categorical = Vec::with_capacity(n_cat.min(1 << 20));
        for _ in 0..n_cat {
            let col = take_usize(r)?;
            let n_categories = take_usize(r)?;
            let mut categories = Vec::with_capacity(n_categories.min(1 << 20));
            for _ in 0..n_categories {
                categories.push(take_str(r)?);
            }
            categorical.push(CatSpec { col, categories });
        }
        let n_classes = take_usize(r)?;
        let mut label_classes = Vec::with_capacity(n_classes.min(1 << 20));
        for _ in 0..n_classes {
            label_classes.push(take_str(r)?);
        }
        let mut feature_names = Vec::with_capacity(n_cols.min(1 << 20));
        for _ in 0..n_cols {
            feature_names.push(take_str(r)?);
        }
        Some(Encoder { numeric, categorical, label_col, label_classes, n_cols, feature_names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldMeta, Schema};
    use crate::value::Value;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, c, y) in [
            (Some(1.0), Some("a"), "p"),
            (Some(3.0), Some("b"), "n"),
            (Some(5.0), Some("a"), "p"),
            (None, None, "n"),
        ] {
            t.push_row(vec![Value::from(x), Value::from(c), Value::from(y)]).unwrap();
        }
        t
    }

    #[test]
    fn fit_transform_shapes() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        assert_eq!(enc.n_cols(), 3); // x + c=a + c=b
        let m = enc.transform(&t).unwrap();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.labels().len(), 4);
        assert_eq!(m.feature_names()[0], "x");
        assert!(m.feature_names().contains(&"c=a".to_string()));
    }

    #[test]
    fn standardization_uses_train_stats() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        // x values 1,3,5 -> mean 3, pop std sqrt(8/3)
        let std = (8.0f64 / 3.0).sqrt();
        assert!((m.row(0)[0] - (1.0 - 3.0) / std).abs() < 1e-12);
        assert!((m.row(1)[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn missing_cells_flagged_and_neutral() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        assert!(m.row_has_missing(3));
        assert!(!m.row_has_missing(0));
        assert_eq!(m.row(3)[0], 0.0); // mean-standardized
        assert_eq!(m.row(3)[1], 0.0); // one-hot zeros
        assert_eq!(m.row(3)[2], 0.0);
        assert!(m.missing_row(3).iter().all(|&b| b));
    }

    #[test]
    fn labels_sorted_stable() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        assert_eq!(enc.label_classes(), &["n".to_string(), "p".to_string()]);
        let m = enc.transform(&t).unwrap();
        assert_eq!(m.labels(), &[1, 0, 1, 0]);
    }

    #[test]
    fn unseen_label_rejected() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let schema = t.schema().clone();
        let mut t2 = Table::new(schema);
        t2.push_row(vec![Value::from(1.0), Value::from("a"), Value::from("zzz")]).unwrap();
        assert!(enc.transform(&t2).is_err());
    }

    #[test]
    fn onehot_cap_respected() {
        let schema = Schema::new(vec![FieldMeta::cat_feature("c"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.push_row(vec![Value::from(format!("cat{i}")), Value::from("p")]).unwrap();
        }
        t.push_row(vec![Value::from("cat0"), Value::from("n")]).unwrap();
        let enc = Encoder::fit_with(&t, 5).unwrap();
        assert_eq!(enc.n_cols(), 5);
        let m = enc.transform(&t).unwrap();
        // "cat0" appears twice -> most frequent -> kept
        assert_eq!(m.row(0)[0], 1.0);
    }

    #[test]
    fn select_rows_subsets() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.row(0), m.row(2));
        assert_eq!(s.row(1), m.row(0));
        assert_eq!(s.labels(), &[m.labels()[2], m.labels()[0], m.labels()[2]]);
    }

    #[test]
    fn from_parts_valid() {
        let m = FeatureMatrix::from_parts(vec![1.0, 2.0, 3.0, 4.0], 2, 2, vec![0, 1], 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn from_parts_bad_labels() {
        FeatureMatrix::from_parts(vec![1.0, 2.0], 2, 1, vec![0, 5], 2);
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let t = Table::new(schema);
        assert!(Encoder::fit(&t).is_err());
    }

    #[test]
    fn explicit_classes_cover_unobserved_labels() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let mut train = Table::new(schema.clone());
        train.push_row(vec![Value::from(1.0), Value::from("p")]).unwrap();
        train.push_row(vec![Value::from(2.0), Value::from("p")]).unwrap();
        // "n" never observed in train but declared up front.
        let enc = Encoder::fit_with_classes(&train, &["p".to_string(), "n".to_string()]).unwrap();
        assert_eq!(enc.label_classes(), &["n".to_string(), "p".to_string()]);
        let mut test = Table::new(schema);
        test.push_row(vec![Value::from(3.0), Value::from("n")]).unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.labels(), &[0]);
        assert_eq!(m.n_classes(), 2);
    }

    #[test]
    fn explicit_classes_must_cover_observed() {
        let t = sample();
        assert!(Encoder::fit_with_classes(&t, &["p".to_string()]).is_err());
        assert!(Encoder::fit_with_classes(&t, &[]).is_err());
    }

    #[test]
    fn matrix_codec_round_trips_exactly() {
        let t = sample();
        let enc = Encoder::fit(&t).unwrap();
        let m = enc.transform(&t).unwrap();
        assert!(m.missing.iter().any(|&b| b), "sample exercises the missing mask");
        let mut out = Vec::new();
        m.encode_into(&mut out);
        let mut r = crate::codec::Reader::new(&out);
        let back = FeatureMatrix::decode_from(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(back, m);
        // corrupt/truncated streams are rejected, not mis-decoded
        assert!(FeatureMatrix::decode_from(&mut crate::codec::Reader::new(b"M1")).is_none());
        let cut = &out[..out.len() - 3];
        assert!(FeatureMatrix::decode_from(&mut crate::codec::Reader::new(cut)).is_none());
    }

    #[test]
    fn encoder_codec_round_trips_exactly() {
        let t = sample();
        let enc = Encoder::fit_with_classes(&t, &["p".into(), "n".into(), "extra".into()]).unwrap();
        let mut out = Vec::new();
        enc.encode_into(&mut out);
        let mut r = crate::codec::Reader::new(&out);
        let back = Encoder::decode_from(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(back, enc);
        // the decoded encoder transforms identically
        assert_eq!(back.transform(&t).unwrap(), enc.transform(&t).unwrap());
        assert!(Encoder::decode_from(&mut crate::codec::Reader::new(b"E0")).is_none());
    }
}
