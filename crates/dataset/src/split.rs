//! Deterministic train/test splitting.
//!
//! CleanML controls ML randomness by repeating every experiment over 20
//! different 70/30 train–test splits (paper §IV-B). The split must be a pure
//! function of `(n_rows, fraction, seed)` so that the *same* partition is
//! reused for the dirty and the cleaned version of a dataset — otherwise the
//! paired t-test would compare metrics from different data.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces `(train_indices, test_indices)` for `n` rows.
///
/// `test_fraction` is clamped to `[0, 1]`; the test set gets
/// `round(n * test_fraction)` rows but always leaves at least one row in the
/// training set when `n >= 2` (and at least one test row when
/// `test_fraction > 0` and `n >= 2`), so degenerate fractions never produce
/// an untrainable split.
pub fn split_indices(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let frac = test_fraction.clamp(0.0, 1.0);
    let mut n_test = (n as f64 * frac).round() as usize;
    if n >= 2 {
        if frac > 0.0 {
            n_test = n_test.max(1);
        }
        n_test = n_test.min(n - 1);
    } else {
        n_test = n_test.min(n);
    }

    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// Produces `k` cross-validation folds over `n` rows: returns for each fold
/// the (train, validation) index sets. Folds partition the shuffled indices
/// as evenly as possible. Deterministic in `(n, k, seed)`.
///
/// # Panics
/// Panics if `k < 2`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let k = k.min(n.max(2));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in idx.iter().enumerate() {
        folds[i % k].push(row);
    }
    (0..k)
        .map(|f| {
            let val = folds[f].clone();
            let train: Vec<usize> =
                (0..k).filter(|&g| g != f).flat_map(|g| folds[g].iter().copied()).collect();
            (train, val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions() {
        let (tr, te) = split_indices(100, 0.3, 42);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
        let all: HashSet<usize> = tr.iter().chain(te.iter()).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_deterministic() {
        assert_eq!(split_indices(50, 0.3, 7), split_indices(50, 0.3, 7));
        assert_ne!(split_indices(50, 0.3, 7), split_indices(50, 0.3, 8));
    }

    #[test]
    fn split_never_empties_train() {
        let (tr, te) = split_indices(10, 1.0, 1);
        assert_eq!(tr.len(), 1);
        assert_eq!(te.len(), 9);
        let (tr, te) = split_indices(2, 0.999, 1);
        assert_eq!(tr.len(), 1);
        assert_eq!(te.len(), 1);
    }

    #[test]
    fn split_zero_fraction() {
        let (tr, te) = split_indices(10, 0.0, 1);
        assert_eq!(tr.len(), 10);
        assert!(te.is_empty());
    }

    #[test]
    fn split_single_row() {
        let (tr, te) = split_indices(1, 0.3, 1);
        assert_eq!(tr.len() + te.len(), 1);
    }

    #[test]
    fn kfold_partitions_validation_sets() {
        let folds = kfold_indices(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = HashSet::new();
        for (tr, va) in &folds {
            assert_eq!(tr.len() + va.len(), 23);
            for v in va {
                assert!(seen.insert(*v), "row {v} in two validation folds");
            }
            let tr_set: HashSet<_> = tr.iter().collect();
            assert!(va.iter().all(|v| !tr_set.contains(v)));
        }
        assert_eq!(seen.len(), 23);
    }

    #[test]
    fn kfold_deterministic() {
        assert_eq!(kfold_indices(40, 5, 9), kfold_indices(40, 5, 9));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k1() {
        kfold_indices(10, 1, 0);
    }
}
