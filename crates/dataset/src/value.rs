//! A single table cell.

use std::fmt;

/// One cell of a [`crate::Table`].
///
/// CleanML datasets contain two primitive kinds — numbers and
/// categorical/free-text strings — plus explicitly missing cells. `Value` is
/// the owned, dynamically-typed representation used at the API boundary
/// (pushing rows, reading cells, CSV I/O); internally columns store values
/// in typed, interned form (see [`crate::ColumnData`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A missing cell (empty CSV field, `NaN` placeholder, deleted value).
    Null,
    /// A numeric cell. `NaN` is normalized to [`Value::Null`] on insertion.
    Num(f64),
    /// A categorical or free-text cell.
    Str(String),
}

impl Value {
    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the numeric payload if this is a [`Value::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable name of the value's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Num(_) => "numeric",
            Value::Str(_) => "categorical",
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        if x.is_nan() {
            Value::Null
        } else {
            Value::Num(x)
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Num(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Num(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_becomes_null() {
        assert_eq!(Value::from(f64::NAN), Value::Null);
        assert!(Value::from(f64::NAN).is_null());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3.5), Value::Num(3.5));
        assert_eq!(Value::from(2i64), Value::Num(2.0));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(None::<f64>), Value::Null);
        assert_eq!(Value::from(Some(1.0)), Value::Num(1.0));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Null.as_num(), None);
        assert_eq!(Value::Num(2.0).as_str(), None);
    }

    #[test]
    fn display_round_trip_like() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Str("abc".into()).to_string(), "abc");
    }
}
