//! Typed columnar storage with interned categorical values.

use std::collections::HashMap;

use crate::error::DatasetError;
use crate::schema::{ColumnKind, FieldMeta};
use crate::value::Value;
use crate::Result;

/// Interned identifier of a categorical value within one column's dictionary.
pub type CatId = u32;

/// Physical storage of one column.
///
/// Numeric columns store `Option<f64>` directly. Categorical columns intern
/// each distinct string once and store `Option<CatId>` per row, which makes
/// the frequency counting, mode computation and one-hot encoding used
/// throughout the cleaning algorithms cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Numeric cells; `None` is a missing cell.
    Numeric(Vec<Option<f64>>),
    /// Categorical cells as dictionary ids; `None` is a missing cell.
    Categorical {
        /// Per-row dictionary ids.
        values: Vec<Option<CatId>>,
        /// Id → string. Never shrinks; ids are stable for a column's lifetime.
        dict: Vec<String>,
        /// String → id reverse index.
        index: HashMap<String, CatId>,
    },
}

/// One named, typed column of a [`crate::Table`].
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    meta: FieldMeta,
    data: ColumnData,
}

impl Column {
    /// Creates an empty column for the given field.
    pub fn new(meta: FieldMeta) -> Self {
        let data = match meta.kind {
            ColumnKind::Numeric => ColumnData::Numeric(Vec::new()),
            ColumnKind::Categorical => ColumnData::Categorical {
                values: Vec::new(),
                dict: Vec::new(),
                index: HashMap::new(),
            },
        };
        Column { meta, data }
    }

    /// Creates an empty column with capacity for `n` rows.
    pub fn with_capacity(meta: FieldMeta, n: usize) -> Self {
        let data = match meta.kind {
            ColumnKind::Numeric => ColumnData::Numeric(Vec::with_capacity(n)),
            ColumnKind::Categorical => ColumnData::Categorical {
                values: Vec::with_capacity(n),
                dict: Vec::new(),
                index: HashMap::new(),
            },
        };
        Column { meta, data }
    }

    /// Reassembles a column from raw storage (the artifact codec's decode
    /// path). The categorical reverse index is rebuilt from the dictionary;
    /// any incoming index is ignored. Returns `None` when the storage is
    /// inconsistent: kind mismatch, an id outside the dictionary, or a
    /// duplicate dictionary string.
    ///
    /// This must preserve the dictionary *exactly* — ids, order, and
    /// entries no surviving row references — because downstream tie-breaks
    /// (e.g. the encoder's frequency sort) are keyed on dictionary ids: a
    /// re-interned column would decode to a semantically different table.
    pub(crate) fn from_parts(meta: FieldMeta, data: ColumnData) -> Option<Column> {
        let data = match (meta.kind, data) {
            (ColumnKind::Numeric, ColumnData::Numeric(v)) => ColumnData::Numeric(v),
            (ColumnKind::Categorical, ColumnData::Categorical { values, dict, .. }) => {
                if values.iter().flatten().any(|&id| id as usize >= dict.len()) {
                    return None;
                }
                let index: HashMap<String, CatId> =
                    dict.iter().enumerate().map(|(i, s)| (s.clone(), i as CatId)).collect();
                if index.len() != dict.len() {
                    return None; // duplicate dictionary strings
                }
                ColumnData::Categorical { values, dict, index }
            }
            _ => return None,
        };
        Some(Column { meta, data })
    }

    /// Column metadata.
    pub fn meta(&self) -> &FieldMeta {
        &self.meta
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Column kind.
    pub fn kind(&self) -> ColumnKind {
        self.meta.kind
    }

    /// Raw data storage (for read-heavy algorithms that want typed access).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Categorical { values, .. } => values.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of missing cells.
    pub fn n_missing(&self) -> usize {
        match &self.data {
            ColumnData::Numeric(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Categorical { values, .. } => values.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Appends one cell, checking the value kind against the column kind.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (&mut self.data, value) {
            (ColumnData::Numeric(v), Value::Null) => v.push(None),
            (ColumnData::Numeric(v), Value::Num(x)) => {
                v.push(if x.is_nan() { None } else { Some(x) })
            }
            (ColumnData::Categorical { values, .. }, Value::Null) => values.push(None),
            (ColumnData::Categorical { values, dict, index }, Value::Str(s)) => {
                let id = Self::intern(dict, index, s);
                values.push(Some(id));
            }
            (_, v) => {
                return Err(DatasetError::KindMismatch {
                    column: self.meta.name.clone(),
                    expected: self.meta.kind.name(),
                    got: v.kind_name(),
                })
            }
        }
        Ok(())
    }

    /// Reads the cell at `row` as an owned [`Value`].
    pub fn get(&self, row: usize) -> Result<Value> {
        let n = self.len();
        match &self.data {
            ColumnData::Numeric(v) => v
                .get(row)
                .map(|x| x.map_or(Value::Null, Value::Num))
                .ok_or(DatasetError::RowOutOfBounds { index: row, n_rows: n }),
            ColumnData::Categorical { values, dict, .. } => values
                .get(row)
                .map(|x| match x {
                    Some(id) => Value::Str(dict[*id as usize].clone()),
                    None => Value::Null,
                })
                .ok_or(DatasetError::RowOutOfBounds { index: row, n_rows: n }),
        }
    }

    /// Overwrites the cell at `row`, checking kinds.
    pub fn set(&mut self, row: usize, value: Value) -> Result<()> {
        let n = self.len();
        if row >= n {
            return Err(DatasetError::RowOutOfBounds { index: row, n_rows: n });
        }
        match (&mut self.data, value) {
            (ColumnData::Numeric(v), Value::Null) => v[row] = None,
            (ColumnData::Numeric(v), Value::Num(x)) => {
                v[row] = if x.is_nan() { None } else { Some(x) }
            }
            (ColumnData::Categorical { values, .. }, Value::Null) => values[row] = None,
            (ColumnData::Categorical { values, dict, index }, Value::Str(s)) => {
                let id = Self::intern(dict, index, s);
                values[row] = Some(id);
            }
            (_, v) => {
                return Err(DatasetError::KindMismatch {
                    column: self.meta.name.clone(),
                    expected: self.meta.kind.name(),
                    got: v.kind_name(),
                })
            }
        }
        Ok(())
    }

    /// Numeric cell accessor without allocation; `None` both for missing
    /// cells and for categorical columns.
    pub fn num(&self, row: usize) -> Option<f64> {
        match &self.data {
            ColumnData::Numeric(v) => v.get(row).copied().flatten(),
            ColumnData::Categorical { .. } => None,
        }
    }

    /// Categorical cell accessor as interned id.
    pub fn cat_id(&self, row: usize) -> Option<CatId> {
        match &self.data {
            ColumnData::Categorical { values, .. } => values.get(row).copied().flatten(),
            ColumnData::Numeric(_) => None,
        }
    }

    /// Categorical cell accessor as borrowed string.
    pub fn cat_str(&self, row: usize) -> Option<&str> {
        match &self.data {
            ColumnData::Categorical { values, dict, .. } => {
                values.get(row).copied().flatten().map(|id| dict[id as usize].as_str())
            }
            ColumnData::Numeric(_) => None,
        }
    }

    /// The dictionary string for `id`, if this is a categorical column.
    pub fn dict_str(&self, id: CatId) -> Option<&str> {
        match &self.data {
            ColumnData::Categorical { dict, .. } => dict.get(id as usize).map(String::as_str),
            ColumnData::Numeric(_) => None,
        }
    }

    /// Interns `s` (if this is a categorical column) and returns its id.
    pub fn intern_str(&mut self, s: &str) -> Option<CatId> {
        match &mut self.data {
            ColumnData::Categorical { dict, index, .. } => {
                Some(Self::intern(dict, index, s.to_owned()))
            }
            ColumnData::Numeric(_) => None,
        }
    }

    /// All non-missing numeric values (empty for categorical columns).
    pub fn numeric_values(&self) -> Vec<f64> {
        match &self.data {
            ColumnData::Numeric(v) => v.iter().copied().flatten().collect(),
            ColumnData::Categorical { .. } => Vec::new(),
        }
    }

    /// Frequency of each interned categorical value among non-missing cells.
    /// Returned vector is indexed by [`CatId`]. Empty for numeric columns.
    pub fn category_counts(&self) -> Vec<usize> {
        match &self.data {
            ColumnData::Categorical { values, dict, .. } => {
                let mut counts = vec![0usize; dict.len()];
                for v in values.iter().copied().flatten() {
                    counts[v as usize] += 1;
                }
                counts
            }
            ColumnData::Numeric(_) => Vec::new(),
        }
    }

    /// Number of distinct strings interned in this column (including ones no
    /// longer referenced by any row).
    pub fn dict_len(&self) -> usize {
        match &self.data {
            ColumnData::Categorical { dict, .. } => dict.len(),
            ColumnData::Numeric(_) => 0,
        }
    }

    /// Keeps only the rows whose index satisfies `keep`, preserving order.
    pub(crate) fn retain_rows(&mut self, keep: &[bool]) {
        match &mut self.data {
            ColumnData::Numeric(v) => {
                let mut i = 0;
                v.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
            ColumnData::Categorical { values, .. } => {
                let mut i = 0;
                values.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
        }
    }

    /// Builds a new column containing the rows at `indices`, in that order.
    /// The categorical dictionary is carried over unchanged so ids remain
    /// comparable between a table and its splits.
    pub(crate) fn gather(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Numeric(v) => ColumnData::Numeric(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Categorical { values, dict, index } => ColumnData::Categorical {
                values: indices.iter().map(|&i| values[i]).collect(),
                dict: dict.clone(),
                index: index.clone(),
            },
        };
        Column { meta: self.meta.clone(), data }
    }

    fn intern(dict: &mut Vec<String>, index: &mut HashMap<String, CatId>, s: String) -> CatId {
        if let Some(&id) = index.get(&s) {
            return id;
        }
        let id = dict.len() as CatId;
        dict.push(s.clone());
        index.insert(s, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldMeta;

    fn num_col() -> Column {
        let mut c = Column::new(FieldMeta::num_feature("x"));
        for v in [Value::Num(1.0), Value::Null, Value::Num(3.0)] {
            c.push(v).unwrap();
        }
        c
    }

    fn cat_col() -> Column {
        let mut c = Column::new(FieldMeta::cat_feature("c"));
        for v in ["a", "b", "a"] {
            c.push(Value::from(v)).unwrap();
        }
        c.push(Value::Null).unwrap();
        c
    }

    #[test]
    fn numeric_basics() {
        let c = num_col();
        assert_eq!(c.len(), 3);
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.num(0), Some(1.0));
        assert_eq!(c.num(1), None);
        assert_eq!(c.numeric_values(), vec![1.0, 3.0]);
        assert_eq!(c.get(1).unwrap(), Value::Null);
    }

    #[test]
    fn categorical_interning() {
        let c = cat_col();
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.cat_id(0), c.cat_id(2));
        assert_ne!(c.cat_id(0), c.cat_id(1));
        assert_eq!(c.cat_str(1), Some("b"));
        assert_eq!(c.dict_len(), 2);
        assert_eq!(c.category_counts(), vec![2, 1]);
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut c = num_col();
        assert!(c.push(Value::from("oops")).is_err());
        let mut c = cat_col();
        assert!(c.push(Value::Num(1.0)).is_err());
    }

    #[test]
    fn set_and_get() {
        let mut c = num_col();
        c.set(1, Value::Num(9.0)).unwrap();
        assert_eq!(c.num(1), Some(9.0));
        c.set(0, Value::Null).unwrap();
        assert_eq!(c.num(0), None);
        assert!(c.set(99, Value::Null).is_err());
    }

    #[test]
    fn nan_pushed_as_missing() {
        let mut c = Column::new(FieldMeta::num_feature("x"));
        c.push(Value::Num(f64::NAN)).unwrap();
        assert_eq!(c.n_missing(), 1);
        let mut c2 = num_col();
        c2.set(0, Value::Num(f64::NAN)).unwrap();
        assert_eq!(c2.num(0), None);
    }

    #[test]
    fn retain_and_gather() {
        let mut c = num_col();
        c.retain_rows(&[true, false, true]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.num(1), Some(3.0));

        let c = cat_col();
        let g = c.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.cat_str(0), Some("a"));
        assert_eq!(g.cat_str(1), Some("a"));
        // dictionary carried over, ids comparable
        assert_eq!(g.cat_id(0), c.cat_id(0));
    }

    #[test]
    fn intern_str_stable() {
        let mut c = cat_col();
        let id_a = c.intern_str("a").unwrap();
        assert_eq!(Some(id_a), c.cat_id(0));
        let id_new = c.intern_str("zzz").unwrap();
        assert_eq!(c.dict_str(id_new), Some("zzz"));
    }
}
