//! # cleanml-dataset
//!
//! Columnar, mixed-type tabular data substrate for the CleanML study.
//!
//! The CleanML paper (ICDE 2021) evaluates data-cleaning algorithms on
//! real-world tabular datasets containing numeric and categorical columns,
//! missing cells, outliers, duplicated rows, inconsistent string values and
//! mislabeled examples. This crate provides the data plane those experiments
//! run on:
//!
//! * [`Value`] — a single cell (null, numeric, or categorical/string).
//! * [`Column`] — typed columnar storage with interned categorical values.
//! * [`Schema`] / [`FieldMeta`] — column names, kinds and roles
//!   (feature / label / key / ignore).
//! * [`Table`] — the dataset itself: row/column access, mutation, filtering,
//!   seeded 70/30 train–test splits, and per-column statistics computed while
//!   skipping nulls (the building blocks of every cleaning algorithm).
//! * [`encode`] — fit-on-train feature encoding (standardized numerics,
//!   frequency-capped one-hot categoricals) producing the dense
//!   [`encode::FeatureMatrix`] consumed by `cleanml-ml`.
//! * [`csv`] — minimal CSV reader/writer with kind inference, used by the
//!   examples and for dumping generated datasets.
//!
//! Everything is deterministic under a caller-provided seed; no global RNG
//! state is used anywhere.
//!
//! ```
//! use cleanml_dataset::{Table, Schema, FieldMeta, ColumnKind, ColumnRole, Value};
//!
//! let schema = Schema::new(vec![
//!     FieldMeta::new("age", ColumnKind::Numeric, ColumnRole::Feature),
//!     FieldMeta::new("city", ColumnKind::Categorical, ColumnRole::Feature),
//!     FieldMeta::new("label", ColumnKind::Categorical, ColumnRole::Label),
//! ]);
//! let mut t = Table::new(schema);
//! t.push_row(vec![Value::from(34.0), Value::from("NYC"), Value::from("yes")]).unwrap();
//! t.push_row(vec![Value::Null, Value::from("SF"), Value::from("no")]).unwrap();
//! assert_eq!(t.n_rows(), 2);
//! assert_eq!(t.column(0).unwrap().n_missing(), 1);
//! ```

pub mod codec;
pub mod column;
pub mod csv;
pub mod encode;
pub mod error;
pub mod schema;
pub mod split;
pub mod stats;
pub mod table;
pub mod value;

pub use column::{Column, ColumnData};
pub use encode::{Encoder, FeatureMatrix};
pub use error::DatasetError;
pub use schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
pub use table::Table;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatasetError>;
