//! Column metadata: kinds, roles, and the table schema.

use crate::error::DatasetError;
use crate::Result;

/// The primitive kind of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Floating-point numeric values (integers are stored as `f64`).
    Numeric,
    /// Categorical / free-text string values (interned per column).
    Categorical,
}

impl ColumnKind {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnKind::Numeric => "numeric",
            ColumnKind::Categorical => "categorical",
        }
    }
}

/// The role a column plays in an ML experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRole {
    /// An input feature for classification.
    Feature,
    /// The classification target. Exactly one per dataset.
    Label,
    /// An identifying attribute used by key-collision duplicate detection;
    /// not fed to the model.
    Key,
    /// Carried along but neither a feature, the label, nor a key
    /// (e.g. free-text fields used only by cleaning algorithms).
    Ignore,
}

/// Name, kind and role of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMeta {
    pub name: String,
    pub kind: ColumnKind,
    pub role: ColumnRole,
}

impl FieldMeta {
    /// Creates metadata for one column.
    pub fn new(name: impl Into<String>, kind: ColumnKind, role: ColumnRole) -> Self {
        FieldMeta { name: name.into(), kind, role }
    }

    /// Shorthand for a numeric feature column.
    pub fn num_feature(name: impl Into<String>) -> Self {
        Self::new(name, ColumnKind::Numeric, ColumnRole::Feature)
    }

    /// Shorthand for a categorical feature column.
    pub fn cat_feature(name: impl Into<String>) -> Self {
        Self::new(name, ColumnKind::Categorical, ColumnRole::Feature)
    }

    /// Shorthand for a categorical label column.
    pub fn label(name: impl Into<String>) -> Self {
        Self::new(name, ColumnKind::Categorical, ColumnRole::Label)
    }

    /// Shorthand for a categorical key column (entity identifier).
    pub fn key(name: impl Into<String>) -> Self {
        Self::new(name, ColumnKind::Categorical, ColumnRole::Key)
    }
}

/// Ordered collection of [`FieldMeta`] describing a [`crate::Table`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<FieldMeta>,
}

impl Schema {
    /// Builds a schema from field metadata. Duplicate names are allowed to be
    /// rejected lazily by name-based lookups (first match wins), matching the
    /// permissive behaviour of CSV headers.
    pub fn new(fields: Vec<FieldMeta>) -> Self {
        Schema { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[FieldMeta] {
        &self.fields
    }

    /// Field at `index`.
    pub fn field(&self, index: usize) -> Result<&FieldMeta> {
        self.fields
            .get(index)
            .ok_or(DatasetError::ColumnOutOfBounds { index, n_columns: self.fields.len() })
    }

    /// Index of the first column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DatasetError::UnknownColumn(name.to_owned()))
    }

    /// Index of the unique label column.
    pub fn label_index(&self) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.role == ColumnRole::Label)
            .ok_or(DatasetError::MissingLabel)
    }

    /// Indices of all feature columns, in schema order.
    pub fn feature_indices(&self) -> Vec<usize> {
        self.indices_with_role(ColumnRole::Feature)
    }

    /// Indices of all key columns, in schema order.
    pub fn key_indices(&self) -> Vec<usize> {
        self.indices_with_role(ColumnRole::Key)
    }

    /// Indices of columns with the given role.
    pub fn indices_with_role(&self, role: ColumnRole) -> Vec<usize> {
        self.fields.iter().enumerate().filter(|(_, f)| f.role == role).map(|(i, _)| i).collect()
    }

    /// Indices of numeric feature columns.
    pub fn numeric_feature_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.role == ColumnRole::Feature && f.kind == ColumnKind::Numeric)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of categorical feature columns.
    pub fn categorical_feature_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.role == ColumnRole::Feature && f.kind == ColumnKind::Categorical)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            FieldMeta::num_feature("a"),
            FieldMeta::cat_feature("b"),
            FieldMeta::key("id"),
            FieldMeta::label("y"),
        ])
    }

    #[test]
    fn lookups() {
        let s = schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(s.index_of("zzz"), Err(DatasetError::UnknownColumn(_))));
        assert_eq!(s.label_index().unwrap(), 3);
        assert_eq!(s.feature_indices(), vec![0, 1]);
        assert_eq!(s.key_indices(), vec![2]);
        assert_eq!(s.numeric_feature_indices(), vec![0]);
        assert_eq!(s.categorical_feature_indices(), vec![1]);
    }

    #[test]
    fn missing_label_detected() {
        let s = Schema::new(vec![FieldMeta::num_feature("a")]);
        assert!(matches!(s.label_index(), Err(DatasetError::MissingLabel)));
    }

    #[test]
    fn field_out_of_bounds() {
        let s = schema();
        assert!(s.field(4).is_err());
        assert_eq!(s.field(0).unwrap().name, "a");
    }
}
