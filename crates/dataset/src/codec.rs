//! Exact, whitespace-token serial forms for the data-plane types.
//!
//! The engine's artifact store (`cleanml-engine`) persists cleaned tables,
//! encoders and feature matrices on disk so an interrupted study resumes
//! without redoing finished work. These codecs provide the *lossless* text
//! form those artifacts are stored in:
//!
//! * floats are written as their IEEE-754 bit patterns (16 hex digits), so
//!   a decoded value is bit-identical to the original — a warm run
//!   reproduces byte-identical result relations;
//! * strings are written as `s`-prefixed byte-hex tokens, so arbitrary
//!   content (whitespace, newlines, quotes, the empty string) survives the
//!   whitespace-token framing;
//! * every compound value is length-prefixed, so a truncated or corrupt
//!   entry decodes to `None` instead of a mangled artifact.
//!
//! The token stream is a plain [`str::split_whitespace`] iterator; codecs
//! compose by appending to / consuming from the same stream, which is how
//! [`crate::encode::Encoder`] and the `cleanml-ml` model codecs nest inside
//! the engine's artifact envelope.

use crate::schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
use crate::table::Table;

/// The token stream all codecs read from.
pub type Tokens<'a> = std::str::SplitWhitespace<'a>;

/// Appends an `f64` as its 16-hex-digit IEEE-754 bit pattern.
pub fn push_f64(out: &mut String, x: f64) {
    out.push(' ');
    out.push_str(&format!("{:016x}", x.to_bits()));
}

/// Reads an `f64` written by [`push_f64`]. The token must be exactly 16 hex
/// digits — a truncated tail would otherwise still parse, silently altering
/// the value.
pub fn take_f64(parts: &mut Tokens<'_>) -> Option<f64> {
    let tok = parts.next()?;
    if tok.len() != 16 {
        return None;
    }
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

/// Appends a `usize` in decimal.
pub fn push_usize(out: &mut String, x: usize) {
    out.push(' ');
    out.push_str(&x.to_string());
}

/// Reads a `usize` written by [`push_usize`].
pub fn take_usize(parts: &mut Tokens<'_>) -> Option<usize> {
    parts.next()?.parse().ok()
}

/// Appends a string as one `s`-prefixed byte-hex token (`""` → `s`).
pub fn push_str(out: &mut String, s: &str) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    out.push(' ');
    out.push('s');
    for b in s.bytes() {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 15) as usize] as char);
    }
}

/// Reads a string written by [`push_str`].
pub fn take_str(parts: &mut Tokens<'_>) -> Option<String> {
    let raw = parts.next()?.strip_prefix('s')?.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return None;
    }
    let bytes: Option<Vec<u8>> = raw
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect();
    String::from_utf8(bytes?).ok()
}

/// Expects the literal token `tag` next in the stream.
pub fn expect(parts: &mut Tokens<'_>, tag: &str) -> Option<()> {
    (parts.next()? == tag).then_some(())
}

fn kind_tag(kind: ColumnKind) -> &'static str {
    match kind {
        ColumnKind::Numeric => "n",
        ColumnKind::Categorical => "c",
    }
}

fn kind_of(tag: &str) -> Option<ColumnKind> {
    match tag {
        "n" => Some(ColumnKind::Numeric),
        "c" => Some(ColumnKind::Categorical),
        _ => None,
    }
}

fn role_tag(role: ColumnRole) -> &'static str {
    match role {
        ColumnRole::Feature => "F",
        ColumnRole::Label => "L",
        ColumnRole::Key => "K",
        ColumnRole::Ignore => "I",
    }
}

fn role_of(tag: &str) -> Option<ColumnRole> {
    match tag {
        "F" => Some(ColumnRole::Feature),
        "L" => Some(ColumnRole::Label),
        "K" => Some(ColumnRole::Key),
        "I" => Some(ColumnRole::Ignore),
        _ => None,
    }
}

/// Appends a [`Table`] to the token stream, serializing the columnar
/// storage *exactly*: numeric columns as bit-pattern cells (`-` = missing),
/// categorical columns as their interned dictionary (in id order, unused
/// entries included) plus per-row ids.
///
/// Preserving the dictionary verbatim — rather than re-interning cell
/// strings on decode — matters for correctness, not just fidelity:
/// downstream tie-breaks (the encoder's frequency sort, cleaning-method
/// mode selection) are keyed on dictionary ids, so a decoded table must be
/// structurally identical to the original or a resumed study would diverge
/// from an uninterrupted one.
pub fn encode_table_into(out: &mut String, t: &Table) {
    out.push_str(" T2");
    push_usize(out, t.n_columns());
    push_usize(out, t.n_rows());
    for f in t.schema().fields() {
        push_str(out, &f.name);
        out.push(' ');
        out.push_str(kind_tag(f.kind));
        out.push(' ');
        out.push_str(role_tag(f.role));
    }
    for col in t.columns() {
        match col.data() {
            crate::ColumnData::Numeric(cells) => {
                for cell in cells {
                    match cell {
                        Some(x) => push_f64(out, *x),
                        None => out.push_str(" -"),
                    }
                }
            }
            crate::ColumnData::Categorical { values, dict, .. } => {
                push_usize(out, dict.len());
                for entry in dict {
                    push_str(out, entry);
                }
                for id in values {
                    match id {
                        Some(id) => push_usize(out, *id as usize),
                        None => out.push_str(" -"),
                    }
                }
            }
        }
    }
}

/// Reads a [`Table`] written by [`encode_table_into`].
pub fn decode_table_from(parts: &mut Tokens<'_>) -> Option<Table> {
    expect(parts, "T2")?;
    let n_cols = take_usize(parts)?;
    let n_rows = take_usize(parts)?;
    let mut fields = Vec::with_capacity(n_cols.min(1 << 20));
    for _ in 0..n_cols {
        let name = take_str(parts)?;
        let kind = kind_of(parts.next()?)?;
        let role = role_of(parts.next()?)?;
        fields.push(FieldMeta::new(name, kind, role));
    }
    let mut columns = Vec::with_capacity(n_cols.min(1 << 20));
    for meta in &fields {
        let data = match meta.kind {
            ColumnKind::Numeric => {
                let mut cells = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    cells.push(match parts.clone().next()? {
                        "-" => {
                            parts.next();
                            None
                        }
                        _ => Some(take_f64(parts)?),
                    });
                }
                crate::ColumnData::Numeric(cells)
            }
            ColumnKind::Categorical => {
                let dict_len = take_usize(parts)?;
                let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
                for _ in 0..dict_len {
                    dict.push(take_str(parts)?);
                }
                let mut values = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    values.push(match parts.clone().next()? {
                        "-" => {
                            parts.next();
                            None
                        }
                        _ => Some(u32::try_from(take_usize(parts)?).ok()?),
                    });
                }
                crate::ColumnData::Categorical { values, dict, index: Default::default() }
            }
        };
        columns.push(crate::Column::from_parts(meta.clone(), data)?);
    }
    Table::from_columns(Schema::new(fields), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn round_trip(t: &Table) -> Table {
        let mut out = String::new();
        encode_table_into(&mut out, t);
        let mut parts = out.split_whitespace();
        let back = decode_table_from(&mut parts).expect("decode");
        assert!(parts.next().is_none(), "trailing tokens");
        back
    }

    #[test]
    fn primitives_round_trip() {
        let mut out = String::new();
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, -1e300, f64::MIN_POSITIVE] {
            out.clear();
            push_f64(&mut out, x);
            let got = take_f64(&mut out.split_whitespace()).unwrap();
            assert_eq!(got.to_bits(), x.to_bits());
        }
        for s in ["", " ", "a b\nc", "NaN", "héllo \"q\"", "\t"] {
            out.clear();
            push_str(&mut out, s);
            assert_eq!(take_str(&mut out.split_whitespace()).unwrap(), s);
        }
        out.clear();
        push_usize(&mut out, 12345);
        assert_eq!(take_usize(&mut out.split_whitespace()), Some(12345));
    }

    #[test]
    fn corrupt_tokens_decode_to_none() {
        assert!(take_f64(&mut "zz".split_whitespace()).is_none());
        assert!(take_str(&mut "x61".split_whitespace()).is_none());
        assert!(take_str(&mut "s6".split_whitespace()).is_none());
        assert!(take_str(&mut "sgg".split_whitespace()).is_none());
        assert!(take_usize(&mut "-3".split_whitespace()).is_none());
        assert!(expect(&mut "U".split_whitespace(), "T").is_none());
    }

    #[test]
    fn table_round_trips_exactly() {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("name with space"),
            FieldMeta::key("id"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, s, id, y) in [
            (Some(1.5), Some(" padded "), "a", "p"),
            (None, Some("NaN"), "b", "n"),
            (Some(-0.0), None, "c", "p"),
            (Some(f64::MAX), Some(""), "d", "n"),
        ] {
            t.push_row(vec![Value::from(x), Value::from(s), Value::from(id), Value::from(y)])
                .unwrap();
        }
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(Schema::new(vec![FieldMeta::num_feature("only")]));
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn dictionary_order_survives_row_filtering() {
        // After `retain_rows`, the dictionary still holds entries no row
        // references, in the original interning order. The codec must
        // reproduce that storage exactly — the encoder's frequency-sort
        // tie-break is keyed on dictionary ids, so a re-interned decode
        // would change downstream results (the bug a kill-resume e2e run
        // surfaced on the Movie dataset).
        let schema = Schema::new(vec![FieldMeta::cat_feature("c")]);
        let mut t = Table::new(schema);
        for s in ["zeta", "alpha", "zeta", "beta"] {
            t.push_row(vec![Value::from(s)]).unwrap();
        }
        t.retain_rows(&[false, true, false, true]); // drops every "zeta" row
        let back = round_trip(&t);
        assert_eq!(back, t, "column storage must be structurally identical");
        match back.column(0).unwrap().data() {
            crate::ColumnData::Categorical { dict, values, .. } => {
                assert_eq!(dict, &["zeta", "alpha", "beta"], "unused entry kept in id order");
                assert_eq!(values, &[Some(1), Some(2)]);
            }
            _ => panic!("categorical column expected"),
        }
    }

    #[test]
    fn truncated_table_is_none() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::from(1.0)]).unwrap();
        let mut out = String::new();
        encode_table_into(&mut out, &t);
        let cut = &out[..out.len() - 4];
        assert!(decode_table_from(&mut cut.split_whitespace()).is_none());
    }
}
