//! Binary wire format for the data-plane artifacts.
//!
//! The engine's artifact store (`cleanml-engine`) persists cleaned tables,
//! encoders, feature matrices and trained models on disk so an interrupted
//! study resumes without redoing finished work, and the planned distributed
//! executor ships the same artifacts across sockets. This module is the
//! *wire layer* those serial forms are built from:
//!
//! * integers are LEB128 varints ([`push_u64`]/[`take_u64`]), so the
//!   ubiquitous small counts and ids cost one byte instead of a decimal
//!   token plus separator;
//! * floats are the 8 little-endian bytes of their IEEE-754 bit pattern —
//!   a decoded value is bit-identical to the original, so a warm run
//!   reproduces byte-identical result relations;
//! * strings are length-prefixed raw bytes, so arbitrary content
//!   (whitespace, newlines, quotes, the empty string) needs no escaping;
//! * every compound value is length- or count-prefixed and every decoder
//!   bounds its allocations by the bytes actually present, so a truncated
//!   or corrupt entry decodes to `None` instead of a mangled artifact or
//!   an abort-by-allocation.
//!
//! Codecs compose by appending to the same `Vec<u8>` / consuming from the
//! same [`Reader`], which is how [`crate::encode::Encoder`] and the
//! `cleanml-ml` model codecs nest inside the engine's artifact envelope.
//!
//! # The artifact frame
//!
//! A *stored* artifact (a file in the run directory, or a payload on a
//! socket) is wrapped in a fixed 22-byte frame header:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "CMAF"
//!      4     2  format version (little-endian u16, currently 2)
//!      6     8  payload length (little-endian u64)
//!     14     8  FNV-1a 64 checksum of the payload (little-endian u64)
//!     22     …  payload
//! ```
//!
//! [`open_frame`] validates all four fields before a decoder sees a single
//! payload byte: truncated, corrupt, legacy-version or foreign files fail
//! closed at the frame boundary instead of deep inside a codec.

use crate::schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
use crate::table::Table;

/// Sequential cursor over an encoded byte buffer. All `take_*` primitives
/// read from it; a `None` from any of them means the buffer is truncated or
/// corrupt at the current position.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed — decoders use this to
    /// reject trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn byte(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.remaining() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
}

/// Appends a `u64` as a LEB128 varint (7 value bits per byte, continuation
/// in the high bit; ≤ 10 bytes).
pub fn push_u64(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint written by [`push_u64`]. Rejects encodings longer than
/// 10 bytes and 10th bytes that overflow 64 bits, so a corrupt stream can
/// neither loop nor wrap silently.
pub fn take_u64(r: &mut Reader<'_>) -> Option<u64> {
    let mut x: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = r.byte()?;
        let bits = (byte & 0x7f) as u64;
        // the 10th byte (shift 63) may only contribute the final bit
        if shift == 63 && bits > 1 {
            return None;
        }
        x |= bits << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
    }
    None
}

/// Appends a `usize` as a varint.
pub fn push_usize(out: &mut Vec<u8>, x: usize) {
    push_u64(out, x as u64);
}

/// Reads a `usize` written by [`push_usize`].
pub fn take_usize(r: &mut Reader<'_>) -> Option<usize> {
    usize::try_from(take_u64(r)?).ok()
}

/// Appends an `f64` as the 8 little-endian bytes of its bit pattern.
pub fn push_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Reads an `f64` written by [`push_f64`]; bit-identical round trip.
pub fn take_f64(r: &mut Reader<'_>) -> Option<f64> {
    let bytes: [u8; 8] = r.take(8)?.try_into().ok()?;
    Some(f64::from_bits(u64::from_le_bytes(bytes)))
}

const BITS_ZERO: u64 = 0.0f64.to_bits();
const BITS_ONE: u64 = 1.0f64.to_bits();

/// Appends an `f64` in the compact form used for bulk numeric payloads
/// (feature-matrix cells, table columns, model weight vectors): the
/// overwhelmingly common exact `0.0` and `1.0` — one-hot cells, class
/// indicators, absent probabilities — cost one byte; every other bit
/// pattern (including `-0.0` and NaNs, kept bit-exact) costs nine.
pub fn push_f64_compact(out: &mut Vec<u8>, x: f64) {
    match x.to_bits() {
        BITS_ZERO => out.push(0),
        BITS_ONE => out.push(1),
        bits => {
            out.push(0xff);
            out.extend_from_slice(&bits.to_le_bytes());
        }
    }
}

/// Reads an `f64` written by [`push_f64_compact`]; bit-identical round
/// trip.
pub fn take_f64_compact(r: &mut Reader<'_>) -> Option<f64> {
    match r.byte()? {
        0 => Some(0.0),
        1 => Some(1.0),
        0xff => take_f64(r),
        _ => None,
    }
}

/// Appends a length-prefixed byte string.
pub fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Reads a byte string written by [`push_bytes`]. The declared length is
/// checked against the bytes actually present *before* anything is sliced
/// or allocated, so an oversized length token is a clean `None`, never an
/// attempted huge allocation.
pub fn take_bytes<'a>(r: &mut Reader<'a>) -> Option<&'a [u8]> {
    let len = take_usize(r)?;
    r.take(len)
}

/// Appends a string as length-prefixed UTF-8 bytes.
pub fn push_str(out: &mut Vec<u8>, s: &str) {
    push_bytes(out, s.as_bytes());
}

/// Reads a string written by [`push_str`]; non-UTF-8 content is rejected.
pub fn take_str(r: &mut Reader<'_>) -> Option<String> {
    String::from_utf8(take_bytes(r)?.to_vec()).ok()
}

/// Appends a one-byte tag (variant discriminants, presence markers).
pub fn push_tag(out: &mut Vec<u8>, tag: u8) {
    out.push(tag);
}

/// Reads a tag byte.
pub fn take_tag(r: &mut Reader<'_>) -> Option<u8> {
    r.byte()
}

/// Expects the exact byte `tag` next in the stream.
pub fn expect(r: &mut Reader<'_>, tag: u8) -> Option<()> {
    (r.byte()? == tag).then_some(())
}

// ---------------------------------------------------------------------------
// The artifact frame
// ---------------------------------------------------------------------------

/// Frame magic: the first four bytes of every stored artifact.
pub const FRAME_MAGIC: [u8; 4] = *b"CMAF";

/// Current artifact format version. Bump on any incompatible payload
/// change; [`open_frame`] rejects every other version, which the store
/// treats as a cache miss (the entry is GC'd and recomputed).
pub const FORMAT_VERSION: u16 = 2;

/// Fixed frame header size: magic + version + payload length + checksum.
pub const FRAME_HEADER_LEN: usize = 22;

/// 64-bit FNV-1a over a byte slice. The absorb step `h = (h ^ b) * prime`
/// is injective in `h` for fixed `b`, so corruption confined to a single
/// byte of an equal-length payload is *always* detected (the diverged
/// states can never reconverge over an identical suffix) — in particular
/// every single-bit flip. Corruption spanning multiple bytes is caught
/// probabilistically (missed with chance ~2⁻⁶⁴), as for any 64-bit digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Wraps a payload in the versioned, checksummed artifact frame.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed artifact and returns its payload. `None` if the
/// magic or version is wrong (legacy or foreign file), the declared length
/// does not match the bytes present *exactly* (truncation or trailing
/// junk), or the checksum fails (corruption).
pub fn open_frame(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < FRAME_HEADER_LEN || bytes[..4] != FRAME_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(bytes[6..14].try_into().ok()?);
    let payload = &bytes[FRAME_HEADER_LEN..];
    if len != payload.len() as u64 {
        return None;
    }
    let checksum = u64::from_le_bytes(bytes[14..22].try_into().ok()?);
    (fnv1a64(payload) == checksum).then_some(payload)
}

// ---------------------------------------------------------------------------
// Table codec
// ---------------------------------------------------------------------------

fn kind_tag(kind: ColumnKind) -> u8 {
    match kind {
        ColumnKind::Numeric => b'n',
        ColumnKind::Categorical => b'c',
    }
}

fn kind_of(tag: u8) -> Option<ColumnKind> {
    match tag {
        b'n' => Some(ColumnKind::Numeric),
        b'c' => Some(ColumnKind::Categorical),
        _ => None,
    }
}

fn role_tag(role: ColumnRole) -> u8 {
    match role {
        ColumnRole::Feature => b'F',
        ColumnRole::Label => b'L',
        ColumnRole::Key => b'K',
        ColumnRole::Ignore => b'I',
    }
}

fn role_of(tag: u8) -> Option<ColumnRole> {
    match tag {
        b'F' => Some(ColumnRole::Feature),
        b'L' => Some(ColumnRole::Label),
        b'K' => Some(ColumnRole::Key),
        b'I' => Some(ColumnRole::Ignore),
        _ => None,
    }
}

/// Appends a [`Table`], serializing the columnar storage *exactly*:
/// numeric columns as presence-tagged bit-pattern cells, categorical
/// columns as their interned dictionary (in id order, unused entries
/// included) plus per-row ids.
///
/// Preserving the dictionary verbatim — rather than re-interning cell
/// strings on decode — matters for correctness, not just fidelity:
/// downstream tie-breaks (the encoder's frequency sort, cleaning-method
/// mode selection) are keyed on dictionary ids, so a decoded table must be
/// structurally identical to the original or a resumed study would diverge
/// from an uninterrupted one.
pub fn encode_table_into(out: &mut Vec<u8>, t: &Table) {
    push_tag(out, b'T');
    push_usize(out, t.n_columns());
    push_usize(out, t.n_rows());
    for f in t.schema().fields() {
        push_str(out, &f.name);
        push_tag(out, kind_tag(f.kind));
        push_tag(out, role_tag(f.role));
    }
    for col in t.columns() {
        match col.data() {
            crate::ColumnData::Numeric(cells) => {
                for cell in cells {
                    match cell {
                        Some(x) => {
                            push_tag(out, 1);
                            push_f64_compact(out, *x);
                        }
                        None => push_tag(out, 0),
                    }
                }
            }
            crate::ColumnData::Categorical { values, dict, .. } => {
                push_usize(out, dict.len());
                for entry in dict {
                    push_str(out, entry);
                }
                for id in values {
                    match id {
                        Some(id) => {
                            push_tag(out, 1);
                            push_u64(out, *id as u64);
                        }
                        None => push_tag(out, 0),
                    }
                }
            }
        }
    }
}

/// Reads a [`Table`] written by [`encode_table_into`].
pub fn decode_table_from(r: &mut Reader<'_>) -> Option<Table> {
    expect(r, b'T')?;
    let n_cols = take_usize(r)?;
    let n_rows = take_usize(r)?;
    // Capacities are clamped: a corrupt size must decode to `None` (when
    // its cells never materialize in the stream), not abort the process on
    // a huge up-front allocation.
    let mut fields = Vec::with_capacity(n_cols.min(1 << 20));
    for _ in 0..n_cols {
        let name = take_str(r)?;
        let kind = kind_of(take_tag(r)?)?;
        let role = role_of(take_tag(r)?)?;
        fields.push(FieldMeta::new(name, kind, role));
    }
    let mut columns = Vec::with_capacity(n_cols.min(1 << 20));
    for meta in &fields {
        let data = match meta.kind {
            ColumnKind::Numeric => {
                let mut cells = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    cells.push(match take_tag(r)? {
                        0 => None,
                        1 => Some(take_f64_compact(r)?),
                        _ => return None,
                    });
                }
                crate::ColumnData::Numeric(cells)
            }
            ColumnKind::Categorical => {
                let dict_len = take_usize(r)?;
                let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
                for _ in 0..dict_len {
                    dict.push(take_str(r)?);
                }
                let mut values = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    values.push(match take_tag(r)? {
                        0 => None,
                        1 => Some(u32::try_from(take_u64(r)?).ok()?),
                        _ => return None,
                    });
                }
                crate::ColumnData::Categorical { values, dict, index: Default::default() }
            }
        };
        columns.push(crate::Column::from_parts(meta.clone(), data)?);
    }
    Table::from_columns(Schema::new(fields), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn round_trip(t: &Table) -> Table {
        let mut out = Vec::new();
        encode_table_into(&mut out, t);
        let mut r = Reader::new(&out);
        let back = decode_table_from(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes");
        back
    }

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, -1e300, f64::MIN_POSITIVE] {
            out.clear();
            push_f64(&mut out, x);
            let got = take_f64(&mut Reader::new(&out)).unwrap();
            assert_eq!(got.to_bits(), x.to_bits());
        }
        for s in ["", " ", "a b\nc", "NaN", "héllo \"q\"", "\t"] {
            out.clear();
            push_str(&mut out, s);
            assert_eq!(take_str(&mut Reader::new(&out)).unwrap(), s);
        }
        for n in [0u64, 1, 127, 128, 16383, 16384, u64::from(u32::MAX), u64::MAX] {
            out.clear();
            push_u64(&mut out, n);
            let mut r = Reader::new(&out);
            assert_eq!(take_u64(&mut r), Some(n));
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_sizes_are_compact() {
        let mut out = Vec::new();
        push_u64(&mut out, 0);
        assert_eq!(out.len(), 1);
        out.clear();
        push_u64(&mut out, 127);
        assert_eq!(out.len(), 1);
        out.clear();
        push_u64(&mut out, 128);
        assert_eq!(out.len(), 2);
        out.clear();
        push_u64(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn corrupt_streams_decode_to_none() {
        // truncated varint (continuation bit set, no next byte)
        assert!(take_u64(&mut Reader::new(&[0x80])).is_none());
        // overlong varint: 10th byte contributing more than the final bit
        let overlong = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert!(take_u64(&mut Reader::new(&overlong)).is_none());
        // 11-byte varint
        let eleven = [0xff; 11];
        assert!(take_u64(&mut Reader::new(&eleven)).is_none());
        // truncated f64
        assert!(take_f64(&mut Reader::new(&[0, 1, 2])).is_none());
        // string length larger than the remaining bytes
        let mut huge = Vec::new();
        push_usize(&mut huge, usize::MAX);
        huge.push(b'x');
        assert!(take_str(&mut Reader::new(&huge)).is_none());
        // non-UTF-8 string content
        let mut bad = Vec::new();
        push_bytes(&mut bad, &[0xff, 0xfe]);
        assert!(take_str(&mut Reader::new(&bad)).is_none());
        assert!(take_bytes(&mut Reader::new(&bad)).is_some(), "raw bytes still readable");
        // wrong tag
        assert!(expect(&mut Reader::new(b"U"), b'T').is_none());
        assert!(expect(&mut Reader::new(&[]), b'T').is_none());
    }

    #[test]
    fn frames_round_trip_and_fail_closed() {
        let payload = b"the artifact payload".to_vec();
        let framed = seal_frame(&payload);
        assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());
        assert_eq!(open_frame(&framed), Some(payload.as_slice()));

        // the empty payload is a valid frame
        let empty = seal_frame(&[]);
        assert_eq!(open_frame(&empty), Some(&[][..]));

        // every truncation fails closed
        for cut in 0..framed.len() {
            assert!(open_frame(&framed[..cut]).is_none(), "truncated at {cut}");
        }
        // trailing junk fails closed (length is exact, not a minimum)
        let mut long = framed.clone();
        long.push(0);
        assert!(open_frame(&long).is_none());
        // wrong magic
        let mut bad = framed.clone();
        bad[0] ^= 1;
        assert!(open_frame(&bad).is_none());
        // legacy / future version
        let mut bad = framed.clone();
        bad[4] = 1;
        assert!(open_frame(&bad).is_none());
        let mut bad = framed.clone();
        bad[4] = FORMAT_VERSION as u8 + 1;
        assert!(open_frame(&bad).is_none());
        // corrupt payload byte: checksum catches it
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(open_frame(&bad).is_none());
        // corrupt checksum byte
        let mut bad = framed;
        bad[14] ^= 0x40;
        assert!(open_frame(&bad).is_none());
        // hex-text-era artifacts have no magic at all
        assert!(open_frame(b"cell v1 3fe0000000000000").is_none());
    }

    #[test]
    fn table_round_trips_exactly() {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("name with space"),
            FieldMeta::key("id"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, s, id, y) in [
            (Some(1.5), Some(" padded "), "a", "p"),
            (None, Some("NaN"), "b", "n"),
            (Some(-0.0), None, "c", "p"),
            (Some(f64::MAX), Some(""), "d", "n"),
        ] {
            t.push_row(vec![Value::from(x), Value::from(s), Value::from(id), Value::from(y)])
                .unwrap();
        }
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(Schema::new(vec![FieldMeta::num_feature("only")]));
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn dictionary_order_survives_row_filtering() {
        // After `retain_rows`, the dictionary still holds entries no row
        // references, in the original interning order. The codec must
        // reproduce that storage exactly — the encoder's frequency-sort
        // tie-break is keyed on dictionary ids, so a re-interned decode
        // would change downstream results (the bug a kill-resume e2e run
        // surfaced on the Movie dataset).
        let schema = Schema::new(vec![FieldMeta::cat_feature("c")]);
        let mut t = Table::new(schema);
        for s in ["zeta", "alpha", "zeta", "beta"] {
            t.push_row(vec![Value::from(s)]).unwrap();
        }
        t.retain_rows(&[false, true, false, true]); // drops every "zeta" row
        let back = round_trip(&t);
        assert_eq!(back, t, "column storage must be structurally identical");
        match back.column(0).unwrap().data() {
            crate::ColumnData::Categorical { dict, values, .. } => {
                assert_eq!(dict, &["zeta", "alpha", "beta"], "unused entry kept in id order");
                assert_eq!(values, &[Some(1), Some(2)]);
            }
            _ => panic!("categorical column expected"),
        }
    }

    #[test]
    fn truncated_table_is_none() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::from(1.0)]).unwrap();
        let mut out = Vec::new();
        encode_table_into(&mut out, &t);
        for cut in 0..out.len() {
            assert!(decode_table_from(&mut Reader::new(&out[..cut])).is_none(), "cut {cut}");
        }
    }
}
