//! Per-column descriptive statistics, computed while skipping missing cells.
//!
//! These are the primitives every CleanML cleaning algorithm is built from:
//! mean/median/mode imputation, the SD outlier rule (mean ± 3σ), and the IQR
//! rule (quartiles ± 1.5·IQR). To respect the paper's leakage protocol, all
//! statistics are computed on *training* partitions only and then applied to
//! both partitions — callers are responsible for passing the right column.

use crate::column::{CatId, Column};

/// Mean of the non-missing numeric values, `None` if there are none.
pub fn mean(col: &Column) -> Option<f64> {
    let v = col.numeric_values();
    if v.is_empty() {
        return None;
    }
    Some(v.iter().sum::<f64>() / v.len() as f64)
}

/// Population standard deviation of the non-missing numeric values.
/// `None` with fewer than one value; 0.0 for a single value.
pub fn std_dev(col: &Column) -> Option<f64> {
    let v = col.numeric_values();
    if v.is_empty() {
        return None;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    let var = v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64;
    Some(var.sqrt())
}

/// Median of the non-missing numeric values, `None` if there are none.
pub fn median(col: &Column) -> Option<f64> {
    let mut v = col.numeric_values();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stored values"));
    Some(if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    })
}

/// Linear-interpolation quantile (`q` in `[0,1]`) of the non-missing numeric
/// values; `None` if there are none. Matches the common "linear" definition
/// (numpy's default), which the paper's IQR rule relies on.
pub fn quantile(col: &Column, q: f64) -> Option<f64> {
    let mut v = col.numeric_values();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stored values"));
    Some(quantile_sorted(&v, q))
}

/// Quantile of an already-sorted, NaN-free slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Mode of the non-missing numeric values (ties broken by smallest value),
/// `None` if there are none. Values are compared by their bit patterns after
/// the NaN-normalization the column enforces, so exact repeats are required —
/// appropriate for the integer-like numeric attributes mode imputation is
/// used on.
pub fn numeric_mode(col: &Column) -> Option<f64> {
    let mut v = col.numeric_values();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stored values"));
    let mut best = v[0];
    let mut best_count = 1usize;
    let mut cur = v[0];
    let mut cur_count = 1usize;
    for &x in &v[1..] {
        if x == cur {
            cur_count += 1;
        } else {
            cur = x;
            cur_count = 1;
        }
        if cur_count > best_count {
            best = cur;
            best_count = cur_count;
        }
    }
    Some(best)
}

/// Most frequent categorical value (by interned id; ties broken by the id
/// interned first, i.e. first-seen). `None` if every cell is missing or the
/// column is numeric.
pub fn categorical_mode(col: &Column) -> Option<CatId> {
    let counts = col.category_counts();
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))) // max count, then smallest id
        .map(|(id, _)| id as CatId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldMeta;
    use crate::value::Value;

    fn col(vals: &[Option<f64>]) -> Column {
        let mut c = Column::new(FieldMeta::num_feature("x"));
        for v in vals {
            c.push(Value::from(*v)).unwrap();
        }
        c
    }

    #[test]
    fn mean_skips_missing() {
        let c = col(&[Some(1.0), None, Some(3.0)]);
        assert_eq!(mean(&c), Some(2.0));
        assert_eq!(mean(&col(&[None, None])), None);
    }

    #[test]
    fn std_dev_population() {
        let c = col(&[
            Some(2.0),
            Some(4.0),
            Some(4.0),
            Some(4.0),
            Some(5.0),
            Some(5.0),
            Some(7.0),
            Some(9.0),
        ]);
        assert!((std_dev(&c).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&col(&[Some(3.0)])), Some(0.0));
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&col(&[Some(3.0), Some(1.0), Some(2.0)])), Some(2.0));
        assert_eq!(median(&col(&[Some(4.0), Some(1.0), Some(2.0), Some(3.0)])), Some(2.5));
        assert_eq!(median(&col(&[])), None);
    }

    #[test]
    fn quantiles_linear() {
        let c = col(&[Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        assert_eq!(quantile(&c, 0.0), Some(1.0));
        assert_eq!(quantile(&c, 1.0), Some(4.0));
        assert_eq!(quantile(&c, 0.5), Some(2.5));
        assert!((quantile(&c, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn numeric_mode_ties_prefer_smaller() {
        assert_eq!(numeric_mode(&col(&[Some(1.0), Some(2.0), Some(2.0), Some(3.0)])), Some(2.0));
        assert_eq!(numeric_mode(&col(&[Some(2.0), Some(1.0)])), Some(1.0));
        assert_eq!(numeric_mode(&col(&[None])), None);
    }

    #[test]
    fn categorical_mode_first_seen_tiebreak() {
        let mut c = Column::new(FieldMeta::cat_feature("c"));
        for v in ["b", "a", "a", "b"] {
            c.push(Value::from(v)).unwrap();
        }
        // tie between a and b -> first interned ("b", id 0)
        let id = categorical_mode(&c).unwrap();
        assert_eq!(c.dict_str(id), Some("b"));
        c.push(Value::from("a")).unwrap();
        let id = categorical_mode(&c).unwrap();
        assert_eq!(c.dict_str(id), Some("a"));
    }

    #[test]
    fn quantile_sorted_degenerate() {
        assert_eq!(quantile_sorted(&[5.0], 0.7), 5.0);
    }
}
