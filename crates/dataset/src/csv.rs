//! Minimal CSV reader/writer with column-kind inference.
//!
//! CleanML's datasets ship as CSV files; this module lets examples load and
//! dump tables without an external dependency. The dialect is RFC-4180-ish:
//! comma separators, `"`-quoted fields with `""` escapes, `\n` or `\r\n`
//! line endings. Empty fields (and the literal placeholders `NaN`, `nan`,
//! `NA`, `null`, `NULL`) parse as missing cells, mirroring how the paper's
//! pipeline detects missing values ("empty or NaN entries", §III-B1).

use std::fmt::Write as _;
use std::path::Path;

use crate::error::DatasetError;
use crate::schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Placeholder strings treated as missing cells on read.
const NULL_TOKENS: [&str; 5] = ["NaN", "nan", "NA", "null", "NULL"];

/// Parses CSV text into rows of raw string fields.
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(DatasetError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => { /* swallow; \n follows in CRLF */ }
                '\n' => {
                    line += 1;
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DatasetError::Csv { line, message: "unterminated quoted field".into() });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

fn is_null_token(s: &str) -> bool {
    s.is_empty() || NULL_TOKENS.contains(&s)
}

/// Reads a table from CSV text. The first row is the header. Column kinds are
/// inferred: a column is numeric when every non-missing field parses as
/// `f64`; otherwise categorical. All columns get [`ColumnRole::Feature`];
/// call [`read_csv_with_roles`] or adjust the schema to mark labels/keys.
pub fn read_csv(text: &str) -> Result<Table> {
    read_csv_with_roles(text, &|_| ColumnRole::Feature)
}

/// Like [`read_csv`] but assigns roles per column name.
pub fn read_csv_with_roles(text: &str, role_of: &dyn Fn(&str) -> ColumnRole) -> Result<Table> {
    let rows = parse_rows(text)?;
    let mut it = rows.into_iter();
    let header =
        it.next().ok_or(DatasetError::Csv { line: 1, message: "missing header".into() })?;
    let data_rows: Vec<Vec<String>> = it.collect();

    for (i, r) in data_rows.iter().enumerate() {
        if r.len() != header.len() {
            return Err(DatasetError::Csv {
                line: i + 2,
                message: format!("expected {} fields, got {}", header.len(), r.len()),
            });
        }
    }

    // Infer kinds.
    let mut kinds = vec![ColumnKind::Numeric; header.len()];
    for (c, kind) in kinds.iter_mut().enumerate() {
        let all_numeric = data_rows
            .iter()
            .map(|r| r[c].trim())
            .filter(|s| !is_null_token(s))
            .all(|s| s.parse::<f64>().is_ok());
        let any_value = data_rows.iter().any(|r| !is_null_token(r[c].trim()));
        if !all_numeric || !any_value {
            *kind = ColumnKind::Categorical;
        }
    }

    let fields: Vec<FieldMeta> = header
        .iter()
        .zip(&kinds)
        .map(|(name, &kind)| FieldMeta::new(name.clone(), kind, role_of(name)))
        .collect();
    let schema = Schema::new(fields);
    let mut table = Table::with_capacity(schema, data_rows.len());

    for r in &data_rows {
        let values: Vec<Value> = r
            .iter()
            .zip(&kinds)
            .map(|(s, &kind)| {
                let s = s.trim();
                if is_null_token(s) {
                    Value::Null
                } else {
                    match kind {
                        ColumnKind::Numeric => {
                            Value::from(s.parse::<f64>().expect("inferred numeric"))
                        }
                        ColumnKind::Categorical => Value::from(s),
                    }
                }
            })
            .collect();
        table.push_row(values)?;
    }
    Ok(table)
}

/// Reads a table from a CSV file.
pub fn read_csv_file(path: &Path) -> Result<Table> {
    let text = std::fs::read_to_string(path)?;
    read_csv(&text)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serializes a table to CSV text (header + rows, `\n` line endings).
/// Missing cells serialize as empty fields.
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema().fields().iter().map(|f| escape(&f.name)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for r in 0..table.n_rows() {
        let cells: Vec<String> = table
            .columns()
            .iter()
            .map(|c| match c.get(r).expect("row in range") {
                Value::Null => String::new(),
                Value::Num(x) => format!("{x}"),
                Value::Str(s) => escape(&s),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_csv_file(table: &Table, path: &Path) -> Result<()> {
    std::fs::write(path, write_csv(table))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "age,city,label\n34,NYC,yes\n,SF,no\n28,\"San, Jose\",yes\n";

    #[test]
    fn read_infers_kinds() {
        let t = read_csv(SAMPLE).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Numeric);
        assert_eq!(t.schema().field(1).unwrap().kind, ColumnKind::Categorical);
        assert_eq!(t.get(1, 0).unwrap(), Value::Null);
        assert_eq!(t.get(2, 1).unwrap(), Value::Str("San, Jose".into()));
    }

    #[test]
    fn carriage_return_fields_round_trip() {
        // \r inside a field must be quoted on write and preserved on read
        // (an unquoted \r is swallowed as CRLF framing).
        assert_eq!(escape("a\rb"), "\"a\rb\"");
        let text = "c,label\n\"a\rb\",yes\nplain,no\n";
        let t = read_csv(text).unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("a\rb".into()));
        let back = read_csv(&write_csv(&t)).unwrap();
        assert_eq!(back.get(0, 0).unwrap(), Value::Str("a\rb".into()));
    }

    #[test]
    fn roles_assigned() {
        let t = read_csv_with_roles(SAMPLE, &|name| {
            if name == "label" {
                ColumnRole::Label
            } else {
                ColumnRole::Feature
            }
        })
        .unwrap();
        assert_eq!(t.label_index().unwrap(), 2);
    }

    #[test]
    fn null_tokens() {
        let t = read_csv("x\nNaN\nnull\n1.5\n").unwrap();
        assert_eq!(t.column(0).unwrap().n_missing(), 2);
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Numeric);
    }

    #[test]
    fn all_null_column_is_categorical() {
        let t = read_csv("x,y\n,a\n,b\n").unwrap();
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Categorical);
    }

    #[test]
    fn quotes_and_escapes_round_trip() {
        let t = read_csv("name\n\"a \"\"quoted\"\" one\"\nplain\n").unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("a \"quoted\" one".into()));
        let text = write_csv(&t);
        let t2 = read_csv(&text).unwrap();
        assert_eq!(t.get(0, 0), t2.get(0, 0));
    }

    #[test]
    fn write_read_round_trip() {
        let t = read_csv(SAMPLE).unwrap();
        let text = write_csv(&t);
        let t2 = read_csv(&text).unwrap();
        assert_eq!(t.n_rows(), t2.n_rows());
        for r in 0..t.n_rows() {
            for c in 0..t.n_columns() {
                assert_eq!(t.get(r, c).unwrap(), t2.get(r, c).unwrap(), "cell {r},{c}");
            }
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(matches!(read_csv("a,b\n1\n"), Err(DatasetError::Csv { .. })));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(read_csv("a\n\"oops\n"), Err(DatasetError::Csv { .. })));
    }

    #[test]
    fn crlf_accepted() {
        let t = read_csv("a,b\r\n1,x\r\n2,y\r\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get(1, 1).unwrap(), Value::Str("y".into()));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = read_csv("a\n1\n2").unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
