//! Minimal CSV reader/writer with column-kind inference.
//!
//! CleanML's datasets ship as CSV files; this module lets examples load and
//! dump tables without an external dependency. The dialect is RFC-4180-ish:
//! comma separators, `"`-quoted fields with `""` escapes, `\n` or `\r\n`
//! line endings. *Unquoted* empty fields (and the literal placeholders
//! `NaN`, `nan`, `NA`, `null`, `NULL`) parse as missing cells, mirroring how
//! the paper's pipeline detects missing values ("empty or NaN entries",
//! §III-B1). Quoting is semantic: a quoted field keeps edge whitespace, is
//! never a null placeholder, and always reads as a string — so
//! [`write_csv`] quotes any string value a bare field would mangle, and
//! `read_csv(write_csv(t))` reproduces `t` exactly for arbitrary string
//! content (the property `crates/dataset/tests/proptests.rs` checks).
//!
//! Because quoting carries meaning, external files written in quote-all
//! style (Excel, pandas `QUOTE_ALL`) read every column as categorical and
//! `"NaN"` as the literal string: strip the quoting (or re-export with
//! minimal quoting) before loading such a file through this reader.

use std::fmt::Write as _;
use std::path::Path;

use crate::error::DatasetError;
use crate::schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Placeholder strings treated as missing cells on read.
const NULL_TOKENS: [&str; 5] = ["NaN", "nan", "NA", "null", "NULL"];

/// One raw parsed field: its text plus whether it was `"`-quoted in the
/// source. Quoting is semantic — quoted fields keep edge whitespace verbatim
/// and are never interpreted as null placeholders.
#[derive(Debug, Clone, PartialEq)]
struct RawField {
    text: String,
    quoted: bool,
}

impl RawField {
    /// The field's value as seen by inference/parsing: unquoted fields are
    /// trimmed, quoted fields are taken verbatim.
    fn value(&self) -> &str {
        if self.quoted {
            &self.text
        } else {
            self.text.trim()
        }
    }

    /// `true` when the field denotes a missing cell. Only *unquoted* empty
    /// fields or null placeholders count: `"NaN"` (quoted) is the literal
    /// string, `NaN` (bare) is a missing cell.
    fn is_null(&self) -> bool {
        !self.quoted && is_null_token(self.value())
    }
}

/// Parses CSV text into rows of raw fields.
fn parse_rows(text: &str) -> Result<Vec<Vec<RawField>>> {
    let mut rows = Vec::new();
    let mut row: Vec<RawField> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    // Set once a closing quote ends the field body; only a separator (or a
    // `""` escape, handled in the quoted branch) may follow.
    let mut quoted = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;

    macro_rules! take_field {
        () => {
            RawField { text: std::mem::take(&mut field), quoted: std::mem::take(&mut quoted) }
        };
    }

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        quoted = true;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() || quoted {
                        return Err(DatasetError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(take_field!());
                }
                '\r' => { /* swallow; \n follows in CRLF */ }
                '\n' => {
                    line += 1;
                    row.push(take_field!());
                    rows.push(std::mem::take(&mut row));
                }
                _ => {
                    if quoted {
                        return Err(DatasetError::Csv {
                            line,
                            message: "text after closing quote".into(),
                        });
                    }
                    field.push(c);
                }
            }
        }
    }
    if in_quotes {
        return Err(DatasetError::Csv { line, message: "unterminated quoted field".into() });
    }
    if !field.is_empty() || quoted || !row.is_empty() {
        row.push(take_field!());
        rows.push(row);
    }
    Ok(rows)
}

fn is_null_token(s: &str) -> bool {
    s.is_empty() || NULL_TOKENS.contains(&s)
}

/// Reads a table from CSV text. The first row is the header. Column kinds are
/// inferred: a column is numeric when every non-missing field parses as
/// `f64`; otherwise categorical. All columns get [`ColumnRole::Feature`];
/// call [`read_csv_with_roles`] or adjust the schema to mark labels/keys.
pub fn read_csv(text: &str) -> Result<Table> {
    read_csv_with_roles(text, &|_| ColumnRole::Feature)
}

/// Like [`read_csv`] but assigns roles per column name.
pub fn read_csv_with_roles(text: &str, role_of: &dyn Fn(&str) -> ColumnRole) -> Result<Table> {
    let rows = parse_rows(text)?;
    let mut it = rows.into_iter();
    let header =
        it.next().ok_or(DatasetError::Csv { line: 1, message: "missing header".into() })?;
    let data_rows: Vec<Vec<RawField>> = it.collect();

    for (i, r) in data_rows.iter().enumerate() {
        if r.len() != header.len() {
            return Err(DatasetError::Csv {
                line: i + 2,
                message: format!("expected {} fields, got {}", header.len(), r.len()),
            });
        }
    }

    // Infer kinds. Quoted fields are always string-valued: `"1.5"` denotes
    // the literal text, so its column is categorical.
    let mut kinds = vec![ColumnKind::Numeric; header.len()];
    for (c, kind) in kinds.iter_mut().enumerate() {
        let all_numeric = data_rows
            .iter()
            .map(|r| &r[c])
            .filter(|f| !f.is_null())
            .all(|f| !f.quoted && f.value().parse::<f64>().is_ok());
        let any_value = data_rows.iter().any(|r| !r[c].is_null());
        if !all_numeric || !any_value {
            *kind = ColumnKind::Categorical;
        }
    }

    let fields: Vec<FieldMeta> = header
        .iter()
        .zip(&kinds)
        .map(|(name, &kind)| FieldMeta::new(name.text.clone(), kind, role_of(&name.text)))
        .collect();
    let schema = Schema::new(fields);
    let mut table = Table::with_capacity(schema, data_rows.len());

    for r in &data_rows {
        let values: Vec<Value> = r
            .iter()
            .zip(&kinds)
            .map(|(f, &kind)| {
                if f.is_null() {
                    Value::Null
                } else {
                    match kind {
                        ColumnKind::Numeric => {
                            Value::from(f.value().parse::<f64>().expect("inferred numeric"))
                        }
                        ColumnKind::Categorical => Value::from(f.value()),
                    }
                }
            })
            .collect();
        table.push_row(values)?;
    }
    Ok(table)
}

/// Reads a table from a CSV file.
pub fn read_csv_file(path: &Path) -> Result<Table> {
    let text = std::fs::read_to_string(path)?;
    read_csv(&text)
}

/// `true` when a string field must be `"`-quoted to survive a round-trip:
/// syntax characters, edge whitespace (the bare form would be trimmed), the
/// empty string and null placeholders (the bare form would read as missing),
/// and anything that parses as a number (the bare form could flip a
/// categorical column's inferred kind).
fn needs_quotes(field: &str) -> bool {
    field.is_empty()
        || field.contains(',')
        || field.contains('"')
        || field.contains('\n')
        || field.contains('\r')
        || field.trim() != field
        || is_null_token(field)
        || field.parse::<f64>().is_ok()
}

fn escape(field: &str) -> String {
    if needs_quotes(field) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serializes a table to CSV text (header + rows, `\n` line endings).
/// Missing cells serialize as empty fields.
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema().fields().iter().map(|f| escape(&f.name)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for r in 0..table.n_rows() {
        let cells: Vec<String> = table
            .columns()
            .iter()
            .map(|c| match c.get(r).expect("row in range") {
                Value::Null => String::new(),
                Value::Num(x) => format!("{x}"),
                Value::Str(s) => escape(&s),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_csv_file(table: &Table, path: &Path) -> Result<()> {
    std::fs::write(path, write_csv(table))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "age,city,label\n34,NYC,yes\n,SF,no\n28,\"San, Jose\",yes\n";

    #[test]
    fn read_infers_kinds() {
        let t = read_csv(SAMPLE).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Numeric);
        assert_eq!(t.schema().field(1).unwrap().kind, ColumnKind::Categorical);
        assert_eq!(t.get(1, 0).unwrap(), Value::Null);
        assert_eq!(t.get(2, 1).unwrap(), Value::Str("San, Jose".into()));
    }

    #[test]
    fn carriage_return_fields_round_trip() {
        // \r inside a field must be quoted on write and preserved on read
        // (an unquoted \r is swallowed as CRLF framing).
        assert_eq!(escape("a\rb"), "\"a\rb\"");
        let text = "c,label\n\"a\rb\",yes\nplain,no\n";
        let t = read_csv(text).unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("a\rb".into()));
        let back = read_csv(&write_csv(&t)).unwrap();
        assert_eq!(back.get(0, 0).unwrap(), Value::Str("a\rb".into()));
    }

    #[test]
    fn roles_assigned() {
        let t = read_csv_with_roles(SAMPLE, &|name| {
            if name == "label" {
                ColumnRole::Label
            } else {
                ColumnRole::Feature
            }
        })
        .unwrap();
        assert_eq!(t.label_index().unwrap(), 2);
    }

    #[test]
    fn null_tokens() {
        let t = read_csv("x\nNaN\nnull\n1.5\n").unwrap();
        assert_eq!(t.column(0).unwrap().n_missing(), 2);
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Numeric);
    }

    #[test]
    fn all_null_column_is_categorical() {
        let t = read_csv("x,y\n,a\n,b\n").unwrap();
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Categorical);
    }

    #[test]
    fn quotes_and_escapes_round_trip() {
        let t = read_csv("name\n\"a \"\"quoted\"\" one\"\nplain\n").unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("a \"quoted\" one".into()));
        let text = write_csv(&t);
        let t2 = read_csv(&text).unwrap();
        assert_eq!(t.get(0, 0), t2.get(0, 0));
    }

    #[test]
    fn write_read_round_trip() {
        let t = read_csv(SAMPLE).unwrap();
        let text = write_csv(&t);
        let t2 = read_csv(&text).unwrap();
        assert_eq!(t.n_rows(), t2.n_rows());
        for r in 0..t.n_rows() {
            for c in 0..t.n_columns() {
                assert_eq!(t.get(r, c).unwrap(), t2.get(r, c).unwrap(), "cell {r},{c}");
            }
        }
    }

    #[test]
    fn edge_whitespace_round_trips() {
        // Bare fields are trimmed; quoted fields keep edge whitespace.
        assert_eq!(escape(" x"), "\" x\"");
        assert_eq!(escape("x \t"), "\"x \t\"");
        let t = read_csv("c\n\" padded \"\nbare\n").unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str(" padded ".into()));
        let back = read_csv(&write_csv(&t)).unwrap();
        assert_eq!(back.get(0, 0).unwrap(), Value::Str(" padded ".into()));
        // unquoted fields still trim, as before
        let t = read_csv("a,b\n 1 , x\n").unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Num(1.0));
        assert_eq!(t.get(0, 1).unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn quoted_null_tokens_are_literal_strings() {
        // A value literally equal to a null placeholder must round-trip.
        for token in ["NaN", "nan", "NA", "null", "NULL", ""] {
            assert_eq!(escape(token), format!("\"{token}\""));
        }
        let t = read_csv("c\n\"NaN\"\n\"\"\nNaN\nplain\n").unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("NaN".into()));
        assert_eq!(t.get(1, 0).unwrap(), Value::Str(String::new()));
        assert_eq!(t.get(2, 0).unwrap(), Value::Null);
        let back = read_csv(&write_csv(&t)).unwrap();
        for r in 0..t.n_rows() {
            assert_eq!(t.get(r, 0).unwrap(), back.get(r, 0).unwrap(), "row {r}");
        }
    }

    #[test]
    fn quoted_numeric_strings_stay_categorical() {
        // `"1.5"` denotes the literal text; the column must not flip to
        // numeric on re-read.
        let t = read_csv("c\n\"1.5\"\n\"2\"\n").unwrap();
        assert_eq!(t.schema().field(0).unwrap().kind, ColumnKind::Categorical);
        assert_eq!(t.get(0, 0).unwrap(), Value::Str("1.5".into()));
        let back = read_csv(&write_csv(&t)).unwrap();
        assert_eq!(back.schema().field(0).unwrap().kind, ColumnKind::Categorical);
        assert_eq!(back.get(1, 0).unwrap(), Value::Str("2".into()));
    }

    #[test]
    fn text_after_closing_quote_rejected() {
        let err = read_csv("a\n\"abc\"def\n").unwrap_err();
        assert!(matches!(err, DatasetError::Csv { line: 2, .. }), "{err:?}");
        assert!(err.to_string().contains("text after closing quote"), "{err}");
        // a second opening quote after a closed field is just as malformed
        assert!(read_csv("a\n\"abc\"\"def\"x\n").is_err());
        // quoted-then-quote at top level
        assert!(matches!(read_csv("a\n\"x\" \n"), Err(DatasetError::Csv { .. })));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(matches!(read_csv("a,b\n1\n"), Err(DatasetError::Csv { .. })));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(read_csv("a\n\"oops\n"), Err(DatasetError::Csv { .. })));
    }

    #[test]
    fn crlf_accepted() {
        let t = read_csv("a,b\r\n1,x\r\n2,y\r\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get(1, 1).unwrap(), Value::Str("y".into()));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = read_csv("a\n1\n2").unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
