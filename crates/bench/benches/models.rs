//! Criterion micro-benchmarks for every classifier family: fit and predict
//! on an encoded representative dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cleanml_datagen::{generate, spec_by_name};
use cleanml_dataset::Encoder;
use cleanml_ml::{ModelKind, ModelSpec, PAPER_MODELS};

fn benches(c: &mut Criterion) {
    let data = generate(spec_by_name("USCensus").expect("known dataset"), 42);
    let (train, test) = data.dirty.split(0.3, 1).expect("split");
    let enc = Encoder::fit(&train).expect("encode");
    let train_m = enc.transform(&train).expect("transform");
    let test_m = enc.transform(&test).expect("transform");

    let mut group = c.benchmark_group("model/fit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let all: Vec<ModelKind> =
        PAPER_MODELS.into_iter().chain([ModelKind::Mlp, ModelKind::Nacl]).collect();
    for kind in &all {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let model = ModelSpec::default_for(*kind).fit(black_box(&train_m), 7).expect("fit");
                black_box(model)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("model/predict");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in &all {
        let model = ModelSpec::default_for(*kind).fit(&train_m, 7).expect("fit");
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(model.predict(black_box(&test_m)).expect("predict")))
        });
    }
    group.finish();
}

criterion_group!(model_benches, benches);
criterion_main!(model_benches);
