//! Criterion micro-benchmarks for every cleaning algorithm family (fit +
//! apply on a train/test pair of a representative dataset).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cleanml_cleaning::{clean_pair, CleaningMethod, ErrorType};
use cleanml_datagen::{generate, spec_by_name};

fn bench_error_type(c: &mut Criterion, dataset: &str, error_type: ErrorType) {
    let data = generate(spec_by_name(dataset).expect("known dataset"), 42);
    let (train, test) = data.dirty.split(0.3, 1).expect("split");
    let mut group = c.benchmark_group(format!("clean/{}", error_type.name()));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for method in CleaningMethod::catalogue(error_type) {
        group.bench_function(method.label(), |b| {
            b.iter(|| {
                let out = clean_pair(black_box(&method), black_box(&train), black_box(&test), 7)
                    .expect("clean");
                black_box(out.report)
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_error_type(c, "Titanic", ErrorType::MissingValues);
    bench_error_type(c, "EEG", ErrorType::Outliers);
    bench_error_type(c, "Restaurant", ErrorType::Duplicates);
    bench_error_type(c, "Company", ErrorType::Inconsistencies);
    bench_error_type(c, "Clothing", ErrorType::Mislabels);
}

criterion_group!(cleaning_benches, benches);
criterion_main!(cleaning_benches);
