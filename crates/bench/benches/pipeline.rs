//! Criterion benchmarks for the end-to-end experiment pipeline: one full
//! R1 experiment (split × clean × train × evaluate × t-test) and the
//! statistics machinery at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cleanml_core::schema::{Detection, ErrorType, Repair, Scenario, Spec1};
use cleanml_core::{run_r1_experiment, ExperimentConfig};
use cleanml_datagen::{generate, spec_by_name};
use cleanml_ml::ModelKind;
use cleanml_stats::{benjamini_yekutieli, paired_t_test};

fn benches(c: &mut Criterion) {
    let data = generate(spec_by_name("EEG").expect("known dataset"), 42);
    let spec = Spec1 {
        dataset: "EEG".into(),
        error_type: ErrorType::Outliers,
        detection: Detection::Iqr,
        repair: Repair::ImputeMean,
        model: ModelKind::LogisticRegression,
        scenario: Scenario::BD,
    };
    let cfg = ExperimentConfig { n_splits: 3, parallel: false, ..ExperimentConfig::quick() };

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("r1_experiment_eeg_iqr_mean_lr", |b| {
        b.iter(|| {
            black_box(run_r1_experiment(black_box(&data), black_box(&spec), &cfg).expect("run"))
        })
    });
    group.finish();

    // Statistics at paper scale: 3612 hypotheses through BY, and a t-test.
    let pvals: Vec<f64> = (0..3612).map(|i| ((i * 37 % 1000) as f64 + 0.5) / 1000.0).collect();
    let before: Vec<f64> = (0..20).map(|i| 0.8 + (i as f64) * 1e-3).collect();
    let after: Vec<f64> = (0..20).map(|i| 0.82 + (i as f64) * 1e-3).collect();
    let mut group = c.benchmark_group("stats");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("benjamini_yekutieli_3612", |b| {
        b.iter(|| black_box(benjamini_yekutieli(black_box(&pvals), 0.05)))
    });
    group.bench_function("paired_t_test_20", |b| {
        b.iter(|| black_box(paired_t_test(black_box(&after), black_box(&before)).expect("t")))
    });
    group.finish();
}

criterion_group!(pipeline_benches, benches);
criterion_main!(pipeline_benches);
