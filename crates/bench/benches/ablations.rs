//! Criterion benchmarks for design-choice ablations called out in
//! `DESIGN.md` §8: isolation-forest size, ZeroER matching cost vs. key
//! collision, and the relative cost of the FDR procedures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cleanml_cleaning::duplicates::{self, DuplicateDetection};
use cleanml_cleaning::outliers::IsolationForest1D;
use cleanml_datagen::{generate, spec_by_name};
use cleanml_stats::{benjamini_hochberg, benjamini_yekutieli, bonferroni};

fn benches(c: &mut Criterion) {
    // Isolation forest: cost vs. tree count.
    let values: Vec<f64> = (0..2000).map(|i| ((i * 97) % 500) as f64 / 10.0).collect();
    let mut group = c.benchmark_group("ablation/iforest_trees");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n_trees in [10usize, 50, 200] {
        group.bench_function(format!("fit_{n_trees}"), |b| {
            b.iter(|| black_box(IsolationForest1D::fit(black_box(&values), n_trees, 7)))
        });
    }
    group.finish();

    // ZeroER fit: all-pairs similarity + EM on a duplicate-bearing dataset.
    let data = generate(spec_by_name("Restaurant").expect("known dataset"), 42);
    let (train, _) = data.dirty.split(0.3, 1).expect("split");
    let mut group = c.benchmark_group("ablation/zeroer");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("fit_restaurant_train", |b| {
        b.iter(|| black_box(duplicates::fit(DuplicateDetection::ZeroEr, black_box(&train))))
    });
    group.bench_function("key_collision_fit", |b| {
        b.iter(|| black_box(duplicates::fit(DuplicateDetection::KeyCollision, black_box(&train))))
    });
    group.finish();

    // FDR procedures at R1 scale.
    let pvals: Vec<f64> = (0..3612).map(|i| ((i * 37 % 1000) as f64 + 0.5) / 1000.0).collect();
    let mut group = c.benchmark_group("ablation/fdr");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("bonferroni", |b| {
        b.iter(|| black_box(bonferroni(black_box(&pvals), 0.05)))
    });
    group.bench_function("benjamini_hochberg", |b| {
        b.iter(|| black_box(benjamini_hochberg(black_box(&pvals), 0.05)))
    });
    group.bench_function("benjamini_yekutieli", |b| {
        b.iter(|| black_box(benjamini_yekutieli(black_box(&pvals), 0.05)))
    });
    group.finish();
}

criterion_group!(ablation_benches, benches);
criterion_main!(ablation_benches);
