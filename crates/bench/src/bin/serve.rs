//! `cleanml-serve` — the resident CleanML engine as a daemon.
//!
//! One long-lived [`cleanml_engine::Engine`] owns the worker pool, the
//! warm in-memory memo and the persistent artifact store; the `--listen`
//! socket serves *both* peer kinds on one port:
//!
//! * `cleanml-query` clients submit studies or single cells and stream
//!   results back — concurrent submissions dedupe into the same in-flight
//!   tasks, and repeat queries answer from the warm cache in milliseconds;
//! * `cleanml-worker` processes lease ready tasks and ship artifacts
//!   back, exactly as against a `--listen` study run;
//! * plain HTTP clients scrape `GET /metrics` and use the results
//!   gateway: `POST /studies` to submit, `GET /studies/:id` to poll,
//!   `GET /studies/:id/r1|r2|r3[.csv|.json]` to filter/order/page rows.
//!
//! ```sh
//! cargo run --release -p cleanml-bench --bin cleanml-serve -- \
//!     --listen 127.0.0.1:7401 --workers 8 \
//!     --cache-dir serve_cache --cache-max-bytes 2g --http-token s3cret
//! cargo run --release -p cleanml-bench --bin cleanml-query -- \
//!     --connect 127.0.0.1:7401 --quick --errors outliers
//! curl -H 'Authorization: Bearer s3cret' \
//!     'http://127.0.0.1:7401/studies/1/r1.json?model=logistic_regression&limit=10'
//! ```
//!
//! `--http-token` puts the gateway's `/studies` routes behind a bearer
//! token (`/metrics` stays open). There is still no TLS — front the
//! listener with a reverse proxy before leaving trusted networks.

use std::time::Duration;

use cleanml_bench::engine_from_args;
use cleanml_engine::Engine;

fn main() {
    let cfg = engine_from_args();
    if cfg.listen.is_none() {
        eprintln!(
            "usage: cleanml-serve --listen HOST:PORT [--workers N] [--cache-dir DIR]\n\
             \u{20}      [--cache-max-bytes N[k|m|g]] [--lease-timeout SECS] [--http-token TOK]\n\
             a resident engine serving cleanml-query clients, cleanml-worker leases\n\
             and the HTTP results gateway (/metrics, /studies)"
        );
        std::process::exit(2);
    }
    let http_auth = cfg.http_token.is_some();
    let engine = Engine::new(cfg);
    let addr = engine.remote_addr().expect("--listen was required above");
    println!("[cleanml-serve] serving on {addr} with {} workers", engine.workers());
    match engine.disk_store() {
        Some(store) => println!(
            "[cleanml-serve] artifact store: {} entries, {} B warm",
            store.len(),
            store.total_bytes()
        ),
        None => println!("[cleanml-serve] no --cache-dir: memo is in-memory only"),
    }
    println!("[cleanml-serve] query:  cleanml-query --connect {addr} [--quick] [--errors LIST]");
    println!("[cleanml-serve] worker: cleanml-worker --connect {addr}");
    println!(
        "[cleanml-serve] http:   http://{addr}/metrics | /studies ({})",
        if http_auth { "bearer auth" } else { "no auth" }
    );

    // The engine's hub service runs on its own threads; this thread only
    // keeps the process (and with it the warm memo) alive.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
