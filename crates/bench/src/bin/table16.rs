//! Reproduces paper Table 16: the cross-error-type summary of empirical
//! findings.
//!
//! Runs the full single-error study (all five error types) and derives, per
//! error type: the dominant flag pattern from Q1 and whether the impact
//! depends on datasets / scenarios / cleaning algorithms / ML models. A
//! dependency is declared when the positive-flag share varies by more than
//! 25 percentage points across the groups of the corresponding query —
//! the same qualitative judgement the paper makes from its Q2/Q3/Q4/Q5
//! tables.

use cleanml_bench::{banner, config_from_args, header, run_study_cli};
use cleanml_core::database::{CleanMlDb, FlagDist};
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;
use cleanml_stats::Flag;

/// Spread (max − min) of positive-flag percentage across groups.
fn p_spread<K>(map: &std::collections::BTreeMap<K, FlagDist>) -> f64 {
    let pcts: Vec<f64> =
        map.values().filter(|d| d.total() > 0).map(|d| d.pct(Flag::Positive)).collect();
    if pcts.len() < 2 {
        return 0.0;
    }
    let max = pcts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = pcts.iter().copied().fold(f64::INFINITY, f64::min);
    max - min
}

fn depends(spread: f64) -> &'static str {
    if spread > 25.0 {
        "Yes"
    } else {
        "No"
    }
}

fn dominant(dist: &FlagDist) -> String {
    let mut parts: Vec<(&str, f64)> = vec![
        ("P", dist.pct(Flag::Positive)),
        ("S", dist.pct(Flag::Insignificant)),
        ("N", dist.pct(Flag::Negative)),
    ];
    parts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top: Vec<&str> = parts.iter().filter(|(_, pct)| *pct >= 25.0).map(|(f, _)| *f).collect();
    format!("Varying (Mostly {})", top.join(" & "))
}

fn summarize(db: &CleanMlDb, et: ErrorType) -> [String; 5] {
    let q1 = db.q1(Relation::R1, et);
    let by_dataset = db.q5(Relation::R1, et);
    let by_scenario = db.q2(Relation::R1, et);
    let by_detection = db.q4_detection(Relation::R1, et);
    let by_repair = db.q4_repair(Relation::R1, et);
    let by_model = db.q3(et);

    let cleaning_spread = p_spread(&by_detection).max(p_spread(&by_repair));
    let cleaning_dep = if by_detection.len() <= 1 && by_repair.len() <= 1 {
        "N.A.".to_string()
    } else {
        depends(cleaning_spread).to_string()
    };

    [
        dominant(&q1),
        depends(p_spread(&by_dataset)).to_string(),
        depends(p_spread(&by_scenario)).to_string(),
        cleaning_dep,
        depends(p_spread(&by_model)).to_string(),
    ]
}

fn main() {
    let cfg = config_from_args();
    banner("Table 16 (Summary of Empirical Findings)", &cfg);
    let all = [
        ErrorType::Duplicates,
        ErrorType::Inconsistencies,
        ErrorType::MissingValues,
        ErrorType::Mislabels,
        ErrorType::Outliers,
    ];
    let db = run_study_cli(&all, &cfg);

    header("Summary of Empirical Findings for Single Error Types");
    println!(
        "{:<16} {:<26} {:>9} {:>10} {:>14} {:>14}",
        "Error Type", "Impact on ML", "Datasets", "Scenarios", "Cleaning Algos", "ML Algorithms"
    );
    for et in all {
        let [impact, ds, sc, cl, ml] = summarize(&db, et);
        println!("{:<16} {:<26} {:>9} {:>10} {:>14} {:>14}", et.name(), impact, ds, sc, cl, ml);
    }

    header("Relation sizes");
    println!(
        "R1 rows = {} ({} hypotheses), R2 rows = {} ({}), R3 rows = {} ({})",
        db.r1.len(),
        db.n_hypotheses(Relation::R1),
        db.r2.len(),
        db.n_hypotheses(Relation::R2),
        db.r3.len(),
        db.n_hypotheses(Relation::R3),
    );
}
