//! Reproduces paper Table 12: query results for **outliers**.
//!
//! Q1 over R1/R2/R3, Q3 (per-model) over R1, Q4.1 (detector) and Q4.2
//! (repair) over R1/R2, Q5 (per-dataset) over R1.

use cleanml_bench::{banner, config_from_args, header, rows_of, run_study_cli};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;

fn main() {
    let cfg = config_from_args();
    banner("Table 12 (Outliers)", &cfg);
    let db = run_study_cli(&[ErrorType::Outliers], &cfg);

    header("Q1 (E = Outliers)");
    let rows = vec![
        ("R1".to_string(), db.q1(Relation::R1, ErrorType::Outliers)),
        ("R2".to_string(), db.q1(Relation::R2, ErrorType::Outliers)),
        ("R3".to_string(), db.q1(Relation::R3, ErrorType::Outliers)),
    ];
    print!("{}", render_flag_table("flag distribution", &rows));

    header("Q3 (E = Outliers) on R1");
    print!("{}", render_flag_table("by ML model", &rows_of(&db.q3(ErrorType::Outliers))));

    for (rel, name) in [(Relation::R1, "R1"), (Relation::R2, "R2")] {
        header(&format!("Q4.1 (E = Outliers) on {name}"));
        print!(
            "{}",
            render_flag_table("by detection", &rows_of(&db.q4_detection(rel, ErrorType::Outliers)))
        );
        header(&format!("Q4.2 (E = Outliers) on {name}"));
        print!(
            "{}",
            render_flag_table("by repair", &rows_of(&db.q4_repair(rel, ErrorType::Outliers)))
        );
    }

    header("Q5 (E = Outliers) on R1");
    print!(
        "{}",
        render_flag_table("by dataset", &rows_of(&db.q5(Relation::R1, ErrorType::Outliers)))
    );
}
