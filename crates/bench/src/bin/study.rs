//! Runs the complete single-error-type study (all five error types, all
//! participating datasets) through the `cleanml-engine` scheduler and
//! materializes the CleanML relational database as CSV files — the paper's
//! central artifact (§III's relations R1/R2/R3).
//!
//! ```sh
//! cargo run --release -p cleanml-bench --bin study -- \
//!     [--quick|--paper] [--workers N] [--cache-dir DIR] \
//!     [--cache-max-bytes N[k|m|g]] [--cache-stats] \
//!     [--listen ADDR] [--lease-timeout SECS] [out_dir]
//! ```
//!
//! With `--cache-dir`, a repeated or resumed invocation — including one
//! killed mid-run — skips every finished cleaning, training and
//! evaluation task via the engine's content-addressed artifact store;
//! `--cache-max-bytes` keeps the run directory under a byte budget with
//! LRU eviction.
//!
//! With `--listen`, this process becomes a distributed coordinator:
//! `cleanml-worker --connect ADDR` processes lease ready tasks over TCP
//! and ship artifacts back into the shared store; a worker killed mid-run
//! costs only its in-flight task (re-leased after `--lease-timeout`).

use std::path::{Path, PathBuf};

use cleanml_bench::{banner, config_from_args, header, run_study_cli};
use cleanml_core::schema::ErrorType;
use cleanml_core::{CleanMlDb, Relation};

/// Writes the relations in their canonical CSV form — the same renderers
/// the serving layer ships over the wire, so a `cleanml-query` response
/// byte-matches these files.
fn dump(db: &CleanMlDb, dir: &Path) -> std::io::Result<()> {
    std::fs::write(dir.join("r1.csv"), db.r1_csv())?;
    std::fs::write(dir.join("r2.csv"), db.r2_csv())?;
    std::fs::write(dir.join("r3.csv"), db.r3_csv())?;
    Ok(())
}

/// Positional `out_dir`: the first non-flag argument that is not a value of
/// a preceding flag.
fn out_dir_from_args() -> PathBuf {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_flags = [
        "--splits",
        "--seed",
        "--workers",
        "--cache-dir",
        "--cache-max-bytes",
        "--listen",
        "--lease-timeout",
    ];
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if value_flags.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            return PathBuf::from(a);
        }
    }
    PathBuf::from("cleanml_db")
}

fn main() {
    let cfg = config_from_args();
    banner("Full CleanML study", &cfg);
    let dir = out_dir_from_args();
    std::fs::create_dir_all(&dir).expect("create output directory");

    let all = [
        ErrorType::MissingValues,
        ErrorType::Outliers,
        ErrorType::Duplicates,
        ErrorType::Inconsistencies,
        ErrorType::Mislabels,
    ];
    let db = run_study_cli(&all, &cfg);
    dump(&db, &dir).expect("write CSVs");

    header("CleanML database written");
    println!(
        "{}: R1 = {} rows, R2 = {} rows, R3 = {} rows ({} hypotheses BY-corrected in R1)",
        dir.display(),
        db.r1.len(),
        db.r2.len(),
        db.r3.len(),
        db.n_hypotheses(Relation::R1),
    );
    for et in all {
        let q1 = db.q1(Relation::R1, et);
        println!(
            "  {:<16} P {:>5}  S {:>5}  N {:>5}",
            et.name(),
            q1.render(cleanml_core::Flag::Positive),
            q1.render(cleanml_core::Flag::Insignificant),
            q1.render(cleanml_core::Flag::Negative),
        );
    }
}
