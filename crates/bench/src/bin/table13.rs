//! Reproduces paper Table 13: query results for **mislabels**.
//!
//! Q1, Q2 (scenario BD vs CD), Q3 (per-model) and Q5 (per-dataset-variant)
//! over the 13 mislabel datasets (Clothing + 4 × {uniform, major, minor}).

use cleanml_bench::{banner, config_from_args, header, rows_of, run_study_cli};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;

fn main() {
    let cfg = config_from_args();
    banner("Table 13 (Mislabels)", &cfg);
    let db = run_study_cli(&[ErrorType::Mislabels], &cfg);

    header("Q1 (E = Mislabel)");
    let rows = vec![
        ("R1".to_string(), db.q1(Relation::R1, ErrorType::Mislabels)),
        ("R2 & R3".to_string(), db.q1(Relation::R2, ErrorType::Mislabels)),
    ];
    print!("{}", render_flag_table("flag distribution", &rows));

    for (rel, name) in [(Relation::R1, "R1"), (Relation::R2, "R2 & R3")] {
        header(&format!("Q2 (E = Mislabel) on {name}"));
        print!("{}", render_flag_table("by scenario", &rows_of(&db.q2(rel, ErrorType::Mislabels))));
    }

    header("Q3 (E = Mislabel) on R1");
    print!("{}", render_flag_table("by ML model", &rows_of(&db.q3(ErrorType::Mislabels))));

    header("Q5 (E = Mislabel) on R1");
    print!(
        "{}",
        render_flag_table("by dataset", &rows_of(&db.q5(Relation::R1, ErrorType::Mislabels)))
    );
}
