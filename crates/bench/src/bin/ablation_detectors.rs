//! Ablation: outlier-detector aggressiveness (paper Table 12 Q4.1's
//! finding that IQR/IF are "more aggressive" than SD).
//!
//! Sweeps the SD multiplier, the IQR fence factor and the isolation-forest
//! contamination on the EEG stand-in, reporting detected cells, detection
//! precision/recall against the injected ground truth, and the flag of the
//! downstream KNN experiment (the paper's most outlier-sensitive model).

use cleanml_bench::{banner, config_from_args, header, job_workers};
use cleanml_cleaning::outliers::{self, OutlierDetection, OutlierRepair};
use cleanml_core::runner::evaluate_grid_with;
use cleanml_core::schema::ErrorType;
use cleanml_datagen::{generate, spec_by_name};
use cleanml_engine::parallel_map;
use cleanml_ml::ModelKind;

fn detection_quality(
    data: &cleanml_datagen::GeneratedDataset,
    detection: OutlierDetection,
) -> (usize, f64, f64) {
    let cleaner = outliers::fit(detection, OutlierRepair::Mean, &data.dirty, 7).expect("fit");
    let detected = cleaner.detect(&data.dirty).expect("detect");

    // Ground truth: cells where dirty != clean in numeric feature columns.
    let mut truth = std::collections::HashSet::new();
    for c in data.dirty.schema().numeric_feature_indices() {
        for r in 0..data.dirty.n_rows() {
            if data.dirty.get(r, c).expect("cell") != data.clean_cells.get(r, c).expect("cell") {
                truth.insert((r, c));
            }
        }
    }
    let tp = detected.iter().filter(|cell| truth.contains(cell)).count();
    let precision = if detected.is_empty() { 1.0 } else { tp as f64 / detected.len() as f64 };
    let recall = if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 };
    (detected.len(), precision, recall)
}

fn main() {
    let cfg = config_from_args();
    banner("Ablation: outlier-detector aggressiveness", &cfg);
    let data = generate(spec_by_name("EEG").expect("known"), cfg.base_seed);

    header("Detection quality on EEG (vs injected ground truth)");
    println!("{:<26} {:>9} {:>10} {:>8}", "detector", "cells", "precision", "recall");
    let sweeps: Vec<(String, OutlierDetection)> = vec![
        ("SD n=2".into(), OutlierDetection::Sd { n_sigmas: 2.0 }),
        ("SD n=3 (paper)".into(), OutlierDetection::Sd { n_sigmas: 3.0 }),
        ("SD n=4".into(), OutlierDetection::Sd { n_sigmas: 4.0 }),
        ("IQR k=1.0".into(), OutlierDetection::Iqr { k: 1.0 }),
        ("IQR k=1.5 (paper)".into(), OutlierDetection::Iqr { k: 1.5 }),
        ("IQR k=3.0".into(), OutlierDetection::Iqr { k: 3.0 }),
        (
            "IF c=0.01 (paper)".into(),
            OutlierDetection::IsolationForest { contamination: 0.01, n_trees: 50 },
        ),
        (
            "IF c=0.05".into(),
            OutlierDetection::IsolationForest { contamination: 0.05, n_trees: 50 },
        ),
        (
            "IF c=0.10".into(),
            OutlierDetection::IsolationForest { contamination: 0.10, n_trees: 50 },
        ),
    ];
    // each detector sweep is independent: fan them out on the job pool
    let qualities = parallel_map(&sweeps, job_workers(), |(_, det)| detection_quality(&data, *det));
    for ((name, _), (cells, p, r)) in sweeps.iter().zip(&qualities) {
        println!("{name:<26} {cells:>9} {p:>10.2} {r:>8.2}");
    }

    header("Downstream KNN flag per catalogue detector (scenario BD)");
    let methods = cleanml_cleaning::CleaningMethod::catalogue(ErrorType::Outliers);
    let grid = evaluate_grid_with(&data, ErrorType::Outliers, &methods, &[ModelKind::Knn], &cfg)
        .expect("grid");
    for row in grid.r1_rows().expect("rows") {
        if row.scenario == cleanml_core::Scenario::BD {
            println!(
                "{:<18} flag={} (B̄={:.3}, D̄={:.3}, p0={:.3})",
                format!("{}/{}", row.detection.name(), row.repair.name()),
                row.flag,
                row.evidence.mean_before,
                row.evidence.mean_after,
                row.evidence.p_two
            );
        }
    }
}
