//! `cleanml-bench-trajectory` — the measured performance trajectory.
//!
//! Runs the repository's quick study three ways against fresh cache
//! directories — cold with telemetry, warm-resumed with telemetry, and
//! cold with the registry disabled — then writes `BENCH_quick.json`:
//! wall-clock for each leg, per-kind task-latency summaries pulled from
//! the metrics registry, the scheduler's observed EWMA task costs, and
//! the measured telemetry overhead (asserted under 2%). Committing the
//! file gives the repository its first perf baseline; regenerate it with
//! `cargo run --release --bin cleanml-bench-trajectory` after changes
//! that should move the needle.
//!
//! Flags: `--out FILE` (default `BENCH_quick.json`), `--splits N`
//! (default 2), `--workers N`, `--errors LIST`, `--trace-out FILE`
//! (records an extra traced cold run so tracing cost never pollutes the
//! overhead measurement).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cleanml_bench::parse_error_types;
use cleanml_core::schema::ErrorType;
use cleanml_core::ExperimentConfig;
use cleanml_engine::{telemetry, Engine, EngineConfig, HistogramSummary, RunReport, TaskKind};

/// The overhead budget: an instrumented quick study must stay within 2%
/// of the same study with every telemetry site disabled.
const OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Wall-clock measurements are noisy on shared runners; re-measure up to
/// this many times (keeping per-leg minima) before declaring the budget
/// blown. The on/off order alternates between attempts so machine warm-up
/// drift never lands on the same leg twice in a row.
const MAX_ATTEMPTS: usize = 5;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|p| {
        args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} expects a value");
            std::process::exit(2);
        })
    })
}

fn engine_cfg(workers: usize, cache_dir: PathBuf) -> EngineConfig {
    EngineConfig {
        workers,
        cache_dir: Some(cache_dir),
        cache_max_bytes: None,
        listen: None,
        lease_timeout: cleanml_engine::DEFAULT_LEASE_TIMEOUT,
        http_token: None,
    }
}

/// One measured study leg: fresh engine, optionally pre-warmed cache dir.
fn run_leg(
    workers: usize,
    cache_dir: &Path,
    error_types: &[ErrorType],
    cfg: &ExperimentConfig,
) -> (Duration, RunReport, Vec<(TaskKind, u64, u64)>) {
    let mut engine = Engine::new(engine_cfg(workers, cache_dir.to_path_buf()));
    let started = Instant::now();
    let (_db, report) =
        engine.run_study_with_report(error_types, cfg).expect("trajectory study run");
    let wall = started.elapsed();
    let costs = engine.cost_observations();
    (wall, report, costs)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path =
        PathBuf::from(flag_value(&args, "--out").unwrap_or_else(|| "BENCH_quick.json".into()));
    let trace_out = flag_value(&args, "--trace-out").map(PathBuf::from);
    let workers = flag_value(&args, "--workers").and_then(|s| s.parse().ok()).unwrap_or(0);
    let splits: usize = flag_value(&args, "--splits").and_then(|s| s.parse().ok()).unwrap_or(2);
    let error_types: Vec<ErrorType> = match flag_value(&args, "--errors") {
        Some(list) => parse_error_types(&list).unwrap_or_else(|| {
            eprintln!("error: --errors names unknown error types: `{list}`");
            std::process::exit(2);
        }),
        None => ErrorType::all().to_vec(),
    };
    let mut cfg = ExperimentConfig::quick();
    cfg.n_splits = splits.max(2);

    let t = telemetry::global();
    let scratch = std::env::temp_dir().join(format!("cleanml-trajectory-{}", std::process::id()));
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut fresh_dir = |tag: &str, n: usize| {
        let d = scratch.join(format!("{tag}-{n}"));
        dirs.push(d.clone());
        d
    };

    // Reported walls keep per-leg minima across attempts; the overhead
    // estimate is the best adjacent on/off pair. The latency and cost
    // summaries come from the *first* cold instrumented run (the
    // registry is cumulative, so capturing right after the first run
    // isolates exactly that run's figures).
    let mut cold_on = Duration::MAX;
    let mut warm_on = Duration::MAX;
    let mut cold_off = Duration::MAX;
    let mut first_latency: Option<Vec<(TaskKind, HistogramSummary)>> = None;
    let mut first_costs: Vec<(TaskKind, u64, u64)> = Vec::new();
    let mut first_slow: Vec<cleanml_engine::SlowTask> = Vec::new();
    // Fold-plane counters for the first cold instrumented leg: how many
    // candidate×fold fits its Train tasks executed and how many fold
    // materializations the shared FoldPlans answered from cache. With the
    // paper()/quick() budgets every Train runs > 1 candidate, so
    // fold_reuse = 0 would mean candidates are re-materializing folds.
    let mut train_cv_fits = 0u64;
    let mut train_fold_reuse = 0u64;
    let mut overhead_pct = f64::INFINITY;

    // Unmeasured warm-up: the first study in a fresh process pays one-off
    // costs (page cache, allocator, CPU governor ramp) that would be
    // charged to whichever measured leg ran first. A single-error-type
    // leg is enough to absorb them cheaply. Telemetry stays off so the
    // registry's first capture below holds exactly one measured run.
    {
        let dir = fresh_dir("warmup", 0);
        let warmup = &error_types[..1];
        t.set_enabled(false);
        let (wall, _, _) = run_leg(workers, &dir, warmup, &cfg);
        t.set_enabled(true);
        eprintln!("[trajectory] warm-up run ({}): {wall:.1?}", warmup[0].name());
    }

    for attempt in 1..=MAX_ATTEMPTS {
        // Alternate which leg runs first so slow drift in machine speed
        // cannot systematically favour one of them.
        let on_first = attempt % 2 == 1;
        let mut attempt_on = Duration::MAX;
        let mut attempt_off = Duration::MAX;
        for leg in 0..2 {
            if (leg == 0) == on_first {
                let dir = fresh_dir("on", attempt);
                t.set_enabled(true);
                t.reset_slow_tasks(); // run boundary: the table is per-run
                let cv_before = t.stats_snapshot();
                let (wall, report, costs) = run_leg(workers, &dir, &error_types, &cfg);
                eprintln!(
                    "[trajectory] attempt {attempt}: cold run (telemetry on): {:.1?}, \
                     {} tasks executed",
                    wall,
                    report.executed_total(),
                );
                cold_on = cold_on.min(wall);
                attempt_on = wall;
                if first_latency.is_none() {
                    first_latency = Some(
                        TaskKind::ALL
                            .iter()
                            .map(|&k| (k, t.task_latency(k)))
                            .filter(|(_, s)| s.count > 0)
                            .collect(),
                    );
                    first_costs = costs;
                    first_slow = t.slowest_tasks();
                    let cv = t.stats_snapshot().since(&cv_before);
                    train_cv_fits = cv.cv_fits;
                    train_fold_reuse = cv.fold_reuse;
                    eprintln!(
                        "[trajectory] fold plane: {} cv fits, {} fold reuses over {} Train tasks",
                        train_cv_fits,
                        train_fold_reuse,
                        report.executed(TaskKind::Train) + report.remote(TaskKind::Train),
                    );
                }

                t.reset_slow_tasks();
                let (wall, report, _) = run_leg(workers, &dir, &error_types, &cfg);
                let warm_trains = report.executed(TaskKind::Train) + report.remote(TaskKind::Train);
                eprintln!(
                    "[trajectory] attempt {attempt}: warm resume: {:.1?}, {} tasks executed",
                    wall,
                    report.executed_total(),
                );
                if warm_trains > 0 {
                    eprintln!("[trajectory] WARNING: warm resume re-trained {warm_trains} models");
                }
                warm_on = warm_on.min(wall);
            } else {
                let dir = fresh_dir("off", attempt);
                t.set_enabled(false);
                let (wall, _, _) = run_leg(workers, &dir, &error_types, &cfg);
                t.set_enabled(true);
                eprintln!("[trajectory] attempt {attempt}: cold run (telemetry off): {wall:.1?}");
                cold_off = cold_off.min(wall);
                attempt_off = wall;
            }
        }

        // The overhead estimate compares each attempt's own adjacent
        // on/off pair (both legs share the same machine epoch, so slow
        // drift cancels) and keeps the best pair seen. A single pair
        // where the instrumented run is not measurably slower bounds the
        // true overhead below the noise floor.
        let pair_pct = ((attempt_on.as_secs_f64() - attempt_off.as_secs_f64())
            / attempt_off.as_secs_f64()
            * 100.0)
            .max(0.0);
        overhead_pct = overhead_pct.min(pair_pct);
        if overhead_pct < OVERHEAD_BUDGET_PCT {
            break;
        }
        eprintln!(
            "[trajectory] attempt {attempt}: overhead {pair_pct:.2}% (best \
             {overhead_pct:.2}%) over budget; re-measuring"
        );
    }

    // The intra-process scaling leg: the same cold study at 4 workers
    // against a fresh cache. On a single-core host the honest figure is
    // ~1x (the nested-parallel plane cannot beat physics); on a
    // multi-core host it measures how well the zero-copy plane and
    // worker pool convert cores into wall-clock.
    const SCALE_WORKERS: usize = 4;
    let (cold_w4, scaling_efficiency) = {
        let dir = fresh_dir("w4", 0);
        t.set_enabled(true);
        t.reset_slow_tasks();
        let (wall, report, _) = run_leg(SCALE_WORKERS, &dir, &error_types, &cfg);
        let speedup = cold_on.as_secs_f64() / wall.as_secs_f64();
        eprintln!(
            "[trajectory] cold run (workers={SCALE_WORKERS}): {:.1?}, {} tasks executed, \
             {speedup:.2}x vs measured cold leg",
            wall,
            report.executed_total(),
        );
        (wall, speedup / SCALE_WORKERS as f64)
    };

    // The traced leg runs after (and apart from) the measured ones, so
    // span recording never counts against the overhead budget.
    if let Some(path) = &trace_out {
        t.start_tracing();
        let dir = fresh_dir("trace", 0);
        let (wall, _, _) = run_leg(workers, &dir, &error_types, &cfg);
        eprintln!("[trajectory] traced cold run: {wall:.1?}");
        match t.write_trace(path) {
            Ok(n) => eprintln!("[trajectory] wrote {n} trace events to {}", path.display()),
            Err(e) => {
                eprintln!("[trajectory] trace write failed ({}): {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"cleanml-bench-trajectory/v1\",\n");
    j.push_str("  \"profile\": \"quick\",\n");
    j.push_str(&format!("  \"splits\": {},\n", cfg.n_splits));
    let names: Vec<String> =
        error_types.iter().map(|et| json_str(&et.name().to_ascii_lowercase())).collect();
    j.push_str(&format!("  \"error_types\": [{}],\n", names.join(", ")));
    j.push_str(&format!(
        "  \"workers\": {},\n",
        engine_cfg(workers, scratch.clone()).effective_workers()
    ));
    // The host's core count contextualizes scaling_efficiency: on a
    // 1-core host the w4 leg cannot beat physics and ~1/4 efficiency is
    // the honest ceiling, not a regression.
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    j.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    j.push_str(&format!("  \"cold_wall_ms\": {:.1},\n", ms(cold_on)));
    j.push_str(&format!("  \"cold_wall_ms_w4\": {:.1},\n", ms(cold_w4)));
    j.push_str(&format!("  \"scaling_efficiency\": {scaling_efficiency:.3},\n"));
    j.push_str(&format!("  \"warm_wall_ms\": {:.1},\n", ms(warm_on)));
    j.push_str(&format!("  \"telemetry_off_cold_wall_ms\": {:.1},\n", ms(cold_off)));
    j.push_str(&format!("  \"telemetry_overhead_pct\": {overhead_pct:.2},\n"));
    j.push_str(&format!("  \"train_cv_fits\": {train_cv_fits},\n"));
    j.push_str(&format!("  \"train_fold_reuse\": {train_fold_reuse},\n"));
    j.push_str("  \"task_latency\": {\n");
    let latency = first_latency.unwrap_or_default();
    let rows: Vec<String> = latency
        .iter()
        .map(|(k, s)| {
            format!(
                "    {}: {{\"count\": {}, \"total_ms\": {:.1}, \"mean_ms\": {:.3}, \
                 \"p50_ms\": {:.1}, \"p90_ms\": {:.1}, \"p99_ms\": {:.1}}}",
                json_str(k.name()),
                s.count,
                s.sum_micros as f64 / 1000.0,
                s.mean_ms(),
                s.p50_ms,
                s.p90_ms,
                s.p99_ms,
            )
        })
        .collect();
    j.push_str(&rows.join(",\n"));
    j.push_str("\n  },\n");
    j.push_str("  \"slowest_tasks\": [\n");
    let rows: Vec<String> = first_slow
        .iter()
        .map(|s| {
            format!(
                "    {{\"label\": {}, \"kind\": {}, \"class\": {}, \"dur_ms\": {:.1}}}",
                json_str(&s.label),
                json_str(s.kind),
                json_str(&s.class),
                s.dur_us as f64 / 1000.0,
            )
        })
        .collect();
    j.push_str(&rows.join(",\n"));
    j.push_str("\n  ],\n");
    j.push_str("  \"cost_model\": {\n");
    let rows: Vec<String> = first_costs
        .iter()
        .map(|(k, n, us)| {
            format!("    {}: {{\"samples\": {n}, \"ewma_us\": {us}}}", json_str(k.name()))
        })
        .collect();
    j.push_str(&rows.join(",\n"));
    j.push_str("\n  }\n}\n");

    if let Err(e) = std::fs::write(&out_path, &j) {
        eprintln!("[trajectory] failed to write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    eprintln!("[trajectory] wrote {}", out_path.display());

    if overhead_pct < OVERHEAD_BUDGET_PCT {
        println!(
            "[trajectory] telemetry overhead {overhead_pct:.2}% < {OVERHEAD_BUDGET_PCT}% budget \
             (best cold walls: {:.1?} instrumented, {:.1?} disabled)",
            cold_on, cold_off,
        );
    } else {
        println!(
            "[trajectory] telemetry overhead {overhead_pct:.2}% EXCEEDS {OVERHEAD_BUDGET_PCT}% \
             budget after {MAX_ATTEMPTS} attempts",
        );
        std::process::exit(1);
    }
}
