//! Ablation: flag stability vs. the number of train/test splits.
//!
//! The paper fixes 20 splits (§IV-B); this ablation shows why fewer splits
//! under-power the t-tests: the same experiment's p-values and flags are
//! recomputed at 5 / 10 / 20 / 40 splits.

use cleanml_bench::{banner, config_from_args, header, job_workers};
use cleanml_core::schema::{Detection, ErrorType, Repair, Scenario, Spec1};
use cleanml_core::{run_r1_experiment, ExperimentConfig};
use cleanml_datagen::{generate, spec_by_name};
use cleanml_engine::parallel_map;
use cleanml_ml::ModelKind;

fn main() {
    let base_cfg = config_from_args();
    banner("Ablation: split count vs statistical power", &base_cfg);
    let data = generate(spec_by_name("EEG").expect("known"), base_cfg.base_seed);
    let spec = Spec1 {
        dataset: "EEG".into(),
        error_type: ErrorType::Outliers,
        detection: Detection::Iqr,
        repair: Repair::ImputeMean,
        model: ModelKind::LogisticRegression,
        scenario: Scenario::BD,
    };

    header("EEG / IQR+Mean / LR / BD at increasing split counts");
    println!("{:>7} {:>10} {:>10} {:>12} {:>6}", "splits", "mean B", "mean D", "p(two)", "flag");
    // the four split counts are independent experiments: fan them out
    // (per-split threads off — the outer fan-out is the parallelism here)
    let counts = [5usize, 10, 20, 40];
    let outcomes = parallel_map(&counts, job_workers(), |&n_splits| {
        let cfg = ExperimentConfig { n_splits, parallel: false, ..base_cfg };
        run_r1_experiment(&data, &spec, &cfg).expect("experiment")
    });
    for (n_splits, out) in counts.iter().zip(&outcomes) {
        println!(
            "{n_splits:>7} {:>10.4} {:>10.4} {:>12.2e} {:>6}",
            out.evidence.mean_before, out.evidence.mean_after, out.evidence.p_two, out.flag
        );
    }
    println!(
        "\nThe effect estimate stabilizes while the p-value shrinks with more \
         splits — fewer than the paper's 20 leaves borderline effects\n\
         undetectable once Benjamini–Yekutieli correction is applied."
    );
}
