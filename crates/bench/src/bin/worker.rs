//! `cleanml-worker` — a remote task executor for the distributed engine.
//!
//! Connects to a coordinator (a study binary started with `--listen`),
//! rebuilds the study's task graph from the wire handshake, then leases
//! ready tasks, fetches their inputs by content address, and ships
//! finished artifacts back as CMAF frames until the coordinator says
//! goodbye:
//!
//! ```sh
//! cargo run --release -p cleanml-bench --bin study -- \
//!     --quick --listen 127.0.0.1:7401 --cache-dir run_dir out_dir &
//! cargo run --release -p cleanml-bench --bin cleanml-worker -- \
//!     --connect 127.0.0.1:7401
//! ```
//!
//! The worker is stateless and disposable: `kill -9` it mid-task and the
//! coordinator re-leases the orphaned work after `--lease-timeout`; start
//! as many as the coordinator's study has parallel width.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use cleanml_engine::remote::{run_worker, FaultPlan};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(addr) = arg_value(&args, "--connect") else {
        eprintln!(
            "usage: cleanml-worker --connect HOST:PORT [--name NAME] [--retry SECS]\n\
             connects to a study coordinator started with --listen"
        );
        std::process::exit(2);
    };
    let name =
        arg_value(&args, "--name").unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let retry_secs = arg_value(&args, "--retry").and_then(|s| s.parse::<u64>().ok()).unwrap_or(30);

    // The coordinator may still be building its graph (or not be up yet in
    // a scripted launch): retry the connect for a bounded window.
    let deadline = Instant::now() + Duration::from_secs(retry_secs);
    let stream = loop {
        match TcpStream::connect(&addr) {
            Ok(stream) => break stream,
            Err(e) if Instant::now() < deadline => {
                eprintln!("[{name}] {addr} not ready ({e}); retrying");
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(e) => {
                eprintln!("[{name}] cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        }
    };
    eprintln!("[{name}] connected to {addr}");

    match run_worker(stream, &name, &FaultPlan::default()) {
        Ok(summary) => {
            println!(
                "[{name}] session complete: {} tasks executed, {} inputs fetched, \
                 {} dependencies recomputed locally",
                summary.completed,
                summary.fetched,
                summary.computed.saturating_sub(summary.completed),
            );
        }
        Err(e) => {
            eprintln!("[{name}] session failed: {e}");
            std::process::exit(1);
        }
    }
}
