//! Reproduces paper Table 18: data cleaning vs. robust-ML approaches
//! (§VII-B).
//!
//! Rows:
//! 1. LR + best cleaning vs **NaCL** on the missing-value datasets;
//! 2. best model + best cleaning vs **NaCL** on the same datasets;
//! 3. best model + best cleaning vs **MLP** on mislabels, inconsistencies,
//!    outliers and duplicates.
//!
//! P = cleaning better than the robust model.

use cleanml_bench::{banner, config_from_args, dist_of, header, job_workers};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::robust::{compare_cleaning_vs_robust, table18_pool, RobustBaseline};
use cleanml_core::schema::ErrorType;
use cleanml_core::study::generate_datasets_for;
use cleanml_engine::parallel_map;

fn run_row(
    label: &str,
    error_type: ErrorType,
    lr_only: bool,
    baseline: RobustBaseline,
    cfg: &cleanml_core::ExperimentConfig,
) -> (String, cleanml_core::FlagDist) {
    let pool = table18_pool(lr_only);
    // Generate eagerly (shared mislabel bases are built once), then fan the
    // per-dataset comparisons out on the engine pool.
    let datasets = generate_datasets_for(error_type, cfg.base_seed);
    let flags = parallel_map(&datasets, job_workers(), |data| {
        compare_cleaning_vs_robust(data, error_type, &pool, baseline, cfg).expect("comparison").flag
    });
    (label.to_owned(), dist_of(&flags))
}

fn main() {
    let cfg = config_from_args();
    banner("Table 18 (Robust ML vs Data Cleaning)", &cfg);

    header("Data Cleaning for ML vs Robust ML (P = cleaning better)");
    let rows = vec![
        run_row(
            "LR + Best Cleaning vs NaCL | Missing Values",
            ErrorType::MissingValues,
            true,
            RobustBaseline::Nacl,
            &cfg,
        ),
        run_row(
            "Best Model + Best Cleaning vs NaCL | Missing Values",
            ErrorType::MissingValues,
            false,
            RobustBaseline::Nacl,
            &cfg,
        ),
        run_row(
            "Best Model + Best Cleaning vs MLP | Mislabel",
            ErrorType::Mislabels,
            false,
            RobustBaseline::Mlp,
            &cfg,
        ),
        run_row(
            "Best Model + Best Cleaning vs MLP | Inconsistency",
            ErrorType::Inconsistencies,
            false,
            RobustBaseline::Mlp,
            &cfg,
        ),
        run_row(
            "Best Model + Best Cleaning vs MLP | Outliers",
            ErrorType::Outliers,
            false,
            RobustBaseline::Mlp,
            &cfg,
        ),
        run_row(
            "Best Model + Best Cleaning vs MLP | Duplicates",
            ErrorType::Duplicates,
            false,
            RobustBaseline::Mlp,
            &cfg,
        ),
    ];
    print!("{}", render_flag_table("per-dataset flags aggregated", &rows));
}
