//! `cleanml-query` — client for a resident `cleanml-serve` engine.
//!
//! Submits a whole study or one `(dataset, error type, method, model)`
//! cell, streams progress to stderr while the engine computes (or answers
//! straight from its warm cache), and prints the R1/R2/R3 CSV text to
//! stdout:
//!
//! ```sh
//! # whole study for two error types
//! cleanml-query --connect 127.0.0.1:7401 --quick --errors outliers,duplicates
//!
//! # one cell: dataset / detection / repair / model
//! cleanml-query --connect 127.0.0.1:7401 --quick --errors outliers \
//!     --cell "Sensor/IQR/Mean/Logistic Regression" --cache-stats
//! ```
//!
//! `--cache-stats` appends the server's accounting line; a warm repeat of
//! the same request reports `executed_train=0` — the memo answered, no
//! model was retrained.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use cleanml_bench::{
    cache_stats_line, config_from_args, parse_error_types, stats_from_serve_report,
};
use cleanml_core::schema::ErrorType;
use cleanml_engine::remote::{poll_recv, proto, Message, Polled, Request, ServeReport, StudySpec};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).cloned()
}

fn usage() -> ! {
    eprintln!(
        "usage: cleanml-query --connect HOST:PORT [--quick|--standard|--paper]\n\
         \u{20}      [--splits N] [--seed N] [--errors LIST] [--cell D/DET/REP/MODEL]\n\
         \u{20}      [--cache-stats] [--retry SECS]\n\
         submits a study (or one cell) to a cleanml-serve engine and prints the CSVs;\n\
         LIST is comma-separated error types (default: all five),\n\
         a --cell names dataset/detection/repair/model and needs exactly one error type"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(addr) = arg_value(&args, "--connect") else { usage() };
    let cfg = config_from_args();
    let error_types: Vec<ErrorType> = match arg_value(&args, "--errors") {
        Some(list) => parse_error_types(&list).unwrap_or_else(|| {
            eprintln!("error: unknown error type in `{list}`");
            std::process::exit(2);
        }),
        None => ErrorType::all().to_vec(),
    };
    let request = match arg_value(&args, "--cell") {
        Some(cell) => {
            let parts: Vec<&str> = cell.split('/').collect();
            let [dataset, detection, repair, model] = parts[..] else {
                eprintln!("error: --cell expects DATASET/DETECTION/REPAIR/MODEL, got `{cell}`");
                std::process::exit(2);
            };
            if error_types.len() != 1 {
                eprintln!("error: a --cell query needs exactly one --errors entry");
                std::process::exit(2);
            }
            Request::Cell {
                spec: StudySpec { error_types, cfg },
                dataset: dataset.trim().to_string(),
                detection: detection.trim().to_string(),
                repair: repair.trim().to_string(),
                model: model.trim().to_string(),
            }
        }
        None => Request::Study(StudySpec { error_types, cfg }),
    };
    let retry_secs = arg_value(&args, "--retry").and_then(|s| s.parse::<u64>().ok()).unwrap_or(30);
    let want_stats = args.iter().any(|a| a == "--cache-stats");

    // The server may still be starting in a scripted launch: retry the
    // connect for a bounded window (mirrors cleanml-worker).
    let deadline = Instant::now() + Duration::from_secs(retry_secs);
    let stream = loop {
        match TcpStream::connect(&addr) {
            Ok(stream) => break stream,
            Err(e) if Instant::now() < deadline => {
                eprintln!("[query] {addr} not ready ({e}); retrying");
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(e) => {
                eprintln!("[query] cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        }
    };
    let _ = stream.set_nodelay(true);
    if let Err(e) = proto::send(&mut &stream, &Message::Submit { request: request.encode() }) {
        eprintln!("[query] cannot submit: {e}");
        std::process::exit(1);
    }

    let mut announced = false;
    loop {
        match poll_recv(&stream, Duration::from_secs(5)) {
            Polled::Pending => {
                // the server Status stream doubles as its liveness signal;
                // probe back so a vanished server fails the write
                if proto::send(&mut &stream, &Message::Heartbeat).is_err() {
                    eprintln!("\n[query] server connection lost");
                    std::process::exit(1);
                }
            }
            Polled::Closed => {
                eprintln!("\n[query] server closed the connection before a result");
                std::process::exit(1);
            }
            Polled::Msg(Message::Status { done, to_run, cache_hits, pruned, .. }) => {
                if !announced {
                    eprintln!(
                        "[query] submitted: {to_run} tasks to run, {cache_hits} cache hits, \
                         {pruned} pruned"
                    );
                    announced = true;
                }
                eprint!("\r[query] {done}/{to_run} tasks done");
            }
            Polled::Msg(Message::ResultCsv { csv, report }) => {
                if announced {
                    eprintln!();
                }
                match String::from_utf8(csv) {
                    Ok(text) => print!("{text}"),
                    Err(_) => {
                        eprintln!("[query] server sent non-UTF-8 CSV");
                        std::process::exit(1);
                    }
                }
                if want_stats {
                    match ServeReport::decode(&report) {
                        Some(sr) => {
                            if sr.dropped_events > 0 {
                                eprintln!(
                                    "[query] warning: server dropped {} progress events",
                                    sr.dropped_events
                                );
                            }
                            let (stats, totals, run) = stats_from_serve_report(&sr);
                            // the slowest-tasks table and fold-plane
                            // counters live in the server's registry and
                            // are not shipped over the wire; a warm serve
                            // fits nothing, so (0, 0) is also the truth
                            println!("{}", cache_stats_line(&stats, totals, &run, (0, 0), &[]));
                        }
                        None => eprintln!("[query] server report did not decode"),
                    }
                }
                std::process::exit(0);
            }
            Polled::Msg(Message::ServeError { error }) => {
                if announced {
                    eprintln!();
                }
                eprintln!("[query] request failed: {error}");
                std::process::exit(1);
            }
            Polled::Msg(Message::Heartbeat) | Polled::Msg(Message::Bye) => {}
            Polled::Msg(other) => {
                eprintln!("\n[query] unexpected message from server: {other:?}");
                std::process::exit(1);
            }
        }
    }
}
