//! Reproduces paper Table 19: automatic vs. human cleaning (§VII-C).
//!
//! Human cleaning = ground-truth repair (the generators retain the paper's
//! missing truth): BabyProduct's missing values, Clothing's mislabels, and
//! the three inconsistency datasets' canonical spellings.
//! P = human cleaning better than the best automatic method.

use cleanml_bench::{banner, config_from_args, dist_of, header};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::human::compare_human_vs_automatic;
use cleanml_core::schema::ErrorType;
use cleanml_core::study::dataset_seed;
use cleanml_datagen::{generate, spec_by_name};
use cleanml_stats::Flag;

fn main() {
    let cfg = config_from_args();
    banner("Table 19 (Automatic vs Human Cleaning)", &cfg);

    let comparisons: [(&[&str], ErrorType); 3] = [
        (&["BabyProduct"], ErrorType::MissingValues),
        (&["Clothing"], ErrorType::Mislabels),
        (&["Company", "Restaurant", "University"], ErrorType::Inconsistencies),
    ];

    header("Automatic Cleaning vs Human Cleaning (P = human better)");
    let mut rows = Vec::new();
    for (datasets, et) in comparisons {
        let mut flags: Vec<Flag> = Vec::new();
        for name in datasets {
            let spec = spec_by_name(name).expect("known dataset");
            let data = generate(spec, dataset_seed(name, cfg.base_seed));
            let cmp = compare_human_vs_automatic(&data, et, &cfg).expect("comparison");
            flags.push(cmp.flag);
        }
        rows.push((format!("{} | {}", datasets.join(","), et.name()), dist_of(&flags)));
    }
    print!("{}", render_flag_table("per-dataset flags aggregated", &rows));
}
