//! Reproduces paper Table 19: automatic vs. human cleaning (§VII-C).
//!
//! Human cleaning = ground-truth repair (the generators retain the paper's
//! missing truth): BabyProduct's missing values, Clothing's mislabels, and
//! the three inconsistency datasets' canonical spellings.
//! P = human cleaning better than the best automatic method.

use cleanml_bench::{banner, config_from_args, dist_of, grouped_flags, header};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::human::compare_human_vs_automatic;
use cleanml_core::schema::ErrorType;
use cleanml_core::study::dataset_seed;
use cleanml_datagen::{generate, spec_by_name};

fn main() {
    let cfg = config_from_args();
    banner("Table 19 (Automatic vs Human Cleaning)", &cfg);

    let comparisons: [(&[&str], ErrorType); 3] = [
        (&["BabyProduct"], ErrorType::MissingValues),
        (&["Clothing"], ErrorType::Mislabels),
        (&["Company", "Restaurant", "University"], ErrorType::Inconsistencies),
    ];

    header("Automatic Cleaning vs Human Cleaning (P = human better)");
    // One job per (dataset, error type), all run concurrently.
    let grouped = grouped_flags(&comparisons, |name, et| {
        let spec = spec_by_name(name).expect("known dataset");
        let data = generate(spec, dataset_seed(name, cfg.base_seed));
        compare_human_vs_automatic(&data, et, &cfg).expect("comparison").flag
    });

    let mut rows = Vec::new();
    for ((datasets, et), row_flags) in comparisons.iter().zip(&grouped) {
        rows.push((format!("{} | {}", datasets.join(","), et.name()), dist_of(row_flags)));
    }
    print!("{}", render_flag_table("per-dataset flags aggregated", &rows));
}
