//! Reproduces paper Table 17: cleaning mixed error types vs. a single error
//! type (§VII-A).
//!
//! Rows: Credit (missing values + outliers), Restaurant & Movie
//! (inconsistencies + duplicates), Airbnb (missing values + outliers +
//! duplicates); each compared against cleaning one of its component error
//! types. `--cap N` bounds each error type's method catalogue inside the
//! Cartesian product (default 3; `--paper` uses the full catalogue).

use cleanml_bench::{banner, config_from_args, dist_of, grouped_flags, header};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::mixed::compare_mixed_vs_single;
use cleanml_core::schema::ErrorType;
use cleanml_core::study::dataset_seed;
use cleanml_datagen::{generate, spec_by_name};

fn cap_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--paper") {
        return usize::MAX;
    }
    args.iter()
        .position(|a| a == "--cap")
        .and_then(|p| args.get(p + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn main() {
    let cfg = config_from_args();
    let cap = cap_from_args();
    banner("Table 17 (Mixed Error Types vs Single Error Type)", &cfg);
    println!("method catalogue cap per error type: {cap}");

    // (datasets, single error type under comparison)
    let comparisons: [(&[&str], ErrorType); 7] = [
        (&["Credit"], ErrorType::Outliers),
        (&["Credit"], ErrorType::MissingValues),
        (&["Restaurant", "Movie"], ErrorType::Inconsistencies),
        (&["Restaurant", "Movie"], ErrorType::Duplicates),
        (&["Airbnb"], ErrorType::Outliers),
        (&["Airbnb"], ErrorType::MissingValues),
        (&["Airbnb"], ErrorType::Duplicates),
    ];

    header("Cleaning Mixed Error Types vs. Single Error Type");
    // One job per (dataset, single error type): all comparisons run
    // concurrently on the engine's job pool.
    let grouped = grouped_flags(&comparisons, |name, single| {
        let spec = spec_by_name(name).expect("known dataset");
        let data = generate(spec, dataset_seed(name, cfg.base_seed));
        compare_mixed_vs_single(&data, single, cap, &cfg).expect("comparison").flag
    });

    let mut rows = Vec::new();
    for ((datasets, single), row_flags) in comparisons.iter().zip(&grouped) {
        let label = format!("{} | mixed vs {}", datasets.join(","), single.name());
        rows.push((label, dist_of(row_flags)));
    }
    print!("{}", render_flag_table("P = mixed better, N = mixed worse", &rows));
}
