//! Reproduces paper Table 15: query results for **duplicates**.
//!
//! Q1 over R1/R2/R3, Q4.1 (ZeroER vs key collision) over R1/R2, Q5 over R1.

use cleanml_bench::{banner, config_from_args, header, rows_of, run_study_cli};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;

fn main() {
    let cfg = config_from_args();
    banner("Table 15 (Duplicates)", &cfg);
    let db = run_study_cli(&[ErrorType::Duplicates], &cfg);

    header("Q1 (E = Duplicates)");
    let rows = vec![
        ("R1".to_string(), db.q1(Relation::R1, ErrorType::Duplicates)),
        ("R2".to_string(), db.q1(Relation::R2, ErrorType::Duplicates)),
        ("R3".to_string(), db.q1(Relation::R3, ErrorType::Duplicates)),
    ];
    print!("{}", render_flag_table("flag distribution", &rows));

    for (rel, name) in [(Relation::R1, "R1"), (Relation::R2, "R2")] {
        header(&format!("Q4.1 (E = Duplicates) on {name}"));
        print!(
            "{}",
            render_flag_table(
                "by detection",
                &rows_of(&db.q4_detection(rel, ErrorType::Duplicates))
            )
        );
    }

    header("Q5 (E = Duplicates) on R1");
    print!(
        "{}",
        render_flag_table("by dataset", &rows_of(&db.q5(Relation::R1, ErrorType::Duplicates)))
    );
}
