//! Reproduces paper Table 11: query results for **missing values**.
//!
//! Q1 over R1/R2/R3, Q4.2 (imputation method breakdown) over R1/R2, and Q5
//! (per-dataset breakdown) over R1.

use cleanml_bench::{banner, config_from_args, header, rows_of, run_study_cli};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;

fn main() {
    let cfg = config_from_args();
    banner("Table 11 (Missing Values)", &cfg);
    let db = run_study_cli(&[ErrorType::MissingValues], &cfg);

    header("Q1 (E = Missing Values)");
    let rows = vec![
        ("R1".to_string(), db.q1(Relation::R1, ErrorType::MissingValues)),
        ("R2".to_string(), db.q1(Relation::R2, ErrorType::MissingValues)),
        ("R3".to_string(), db.q1(Relation::R3, ErrorType::MissingValues)),
    ];
    print!("{}", render_flag_table("flag distribution", &rows));

    for (rel, name) in [(Relation::R1, "R1"), (Relation::R2, "R2")] {
        header(&format!("Q4.2 (E = Missing Values) on {name}"));
        let map = db.q4_repair(rel, ErrorType::MissingValues);
        print!("{}", render_flag_table("by imputation method", &rows_of(&map)));
    }

    header("Q5 (E = Missing Values) on R1");
    let map = db.q5(Relation::R1, ErrorType::MissingValues);
    print!("{}", render_flag_table("by dataset", &rows_of(&map)));
}
