//! Writes all 14 dataset stand-ins (dirty + ground truth) as CSV files.
//!
//! ```sh
//! cargo run --release -p cleanml-bench --bin dump_datasets -- out_dir [seed]
//! ```

use std::path::PathBuf;

use cleanml_datagen::{generate, specs};
use cleanml_dataset::csv::write_csv_file;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = PathBuf::from(args.next().unwrap_or_else(|| "datasets_out".into()));
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    std::fs::create_dir_all(&dir).expect("create output directory");

    println!("writing 14 datasets (seed {seed}) to {}", dir.display());
    for spec in specs() {
        let ds = generate(spec, seed);
        let dirty_path = dir.join(format!("{}_dirty.csv", spec.name));
        let clean_path = dir.join(format!("{}_truth.csv", spec.name));
        write_csv_file(&ds.dirty, &dirty_path).expect("write dirty");
        write_csv_file(&ds.clean_cells, &clean_path).expect("write truth");
        println!(
            "  {:<12} {:>4} rows  {:>3} missing cells  {:>3} dup rows  {:>3} mislabels  ({})",
            spec.name,
            ds.dirty.n_rows(),
            ds.dirty.n_missing_cells(),
            ds.duplicate_rows.len(),
            ds.mislabeled_rows.len(),
            spec.description,
        );
    }
}
