//! Ablation: how the multiple-testing correction changes the study's
//! conclusions (paper §IV-C's motivation for choosing Benjamini–Yekutieli).
//!
//! Runs one error type's study once, then re-derives all flags under four
//! regimes — uncorrected, Bonferroni, Benjamini–Hochberg, BY — and prints
//! the R1 flag distributions side by side. Expected shape: discoveries
//! shrink monotonically from uncorrected → BH → BY, with Bonferroni the
//! bluntest instrument (it kills borderline effects BH/BY keep, paper's
//! critique of it).

use cleanml_bench::{banner, config_from_args, header, run_study_cli};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;
use cleanml_stats::Correction;

fn main() {
    let cfg = config_from_args();
    banner("Ablation: FDR correction choice", &cfg);
    let error_type = ErrorType::MissingValues;
    // the engine study applies BY; we re-correct from the stored p-values.
    let base = run_study_cli(&[error_type], &cfg);

    header(&format!("R1 flags for {} under each correction", error_type.name()));
    let mut rows = Vec::new();
    for (name, correction) in [
        ("uncorrected", Correction::None),
        ("Bonferroni", Correction::Bonferroni),
        ("Benjamini-Hochberg", Correction::BenjaminiHochberg),
        ("Benjamini-Yekutieli", Correction::BenjaminiYekutieli),
    ] {
        let mut db = base.clone();
        db.apply_correction(correction, cfg.alpha);
        rows.push((name.to_owned(), db.q1(Relation::R1, error_type)));
    }
    print!("{}", render_flag_table("flag distribution per correction", &rows));
    println!("\nhypotheses corrected per relation: R1 = {}", base.n_hypotheses(Relation::R1));
}
