//! Reproduces paper Table 14: query results for **inconsistencies**.
//!
//! Q1 over R1 and R2&R3, Q5 (per-dataset) over R1.

use cleanml_bench::{banner, config_from_args, header, rows_of, run_study_cli};
use cleanml_core::analysis::render_flag_table;
use cleanml_core::schema::ErrorType;
use cleanml_core::Relation;

fn main() {
    let cfg = config_from_args();
    banner("Table 14 (Inconsistencies)", &cfg);
    let db = run_study_cli(&[ErrorType::Inconsistencies], &cfg);

    header("Q1 (E = Inconsistencies)");
    let rows = vec![
        ("R1".to_string(), db.q1(Relation::R1, ErrorType::Inconsistencies)),
        ("R2 & R3".to_string(), db.q1(Relation::R2, ErrorType::Inconsistencies)),
    ];
    print!("{}", render_flag_table("flag distribution", &rows));

    header("Q5 (E = Inconsistencies) on R1");
    print!(
        "{}",
        render_flag_table("by dataset", &rows_of(&db.q5(Relation::R1, ErrorType::Inconsistencies)))
    );
}
