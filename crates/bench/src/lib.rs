//! # cleanml-bench
//!
//! The reproduction harness: one binary per paper table (Tables 11–19),
//! scientific ablation binaries, and Criterion micro-benchmarks.
//!
//! Every `tableNN` binary regenerates the corresponding table of the paper's
//! evaluation section from scratch — generate datasets, run the §IV protocol,
//! apply Benjamini–Yekutieli, issue the §V-A queries — and prints rows in
//! the paper's `NN% (count)` format. Absolute counts depend on the synthetic
//! stand-ins (see `DESIGN.md` §4); the *shape* — which flags dominate, which
//! methods/models/datasets deviate — is the reproduction target, recorded in
//! `EXPERIMENTS.md`.
//!
//! All binaries accept a profile argument:
//!
//! * `--quick` — 6 splits, no tuning (seconds; CI smoke).
//! * `--standard` — the default: paper's 20 splits, default hyper-parameters.
//! * `--paper` — 20 splits with random search + 5-fold CV (slow).

use cleanml_core::database::FlagDist;
use cleanml_core::ExperimentConfig;
use cleanml_stats::Flag;

/// Parses the common CLI profile flags.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--paper") {
        ExperimentConfig::paper()
    } else if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    };
    if let Some(pos) = args.iter().position(|a| a == "--splits") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
            cfg.n_splits = n.max(2);
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(s) = args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            cfg.base_seed = s;
        }
    }
    cfg
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Converts a grouped query result into printable rows.
pub fn rows_of<K: std::fmt::Display>(
    map: &std::collections::BTreeMap<K, FlagDist>,
) -> Vec<(String, FlagDist)> {
    map.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// Builds a [`FlagDist`] from individual flags (Tables 17–19 aggregation).
pub fn dist_of(flags: &[Flag]) -> FlagDist {
    let mut d = FlagDist::default();
    for &f in flags {
        d.add(f);
    }
    d
}

/// Prints the run configuration banner.
pub fn banner(table: &str, cfg: &ExperimentConfig) {
    println!(
        "CleanML reproduction — {table} | splits={} search={:?} alpha={} seed={}",
        cfg.n_splits, cfg.search, cfg.alpha, cfg.base_seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_aggregation() {
        let d = dist_of(&[Flag::Positive, Flag::Negative, Flag::Positive]);
        assert_eq!(d.p, 2);
        assert_eq!(d.n, 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn rows_render() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("EEG".to_string(), FlagDist { p: 1, s: 0, n: 0 });
        let rows = rows_of(&m);
        assert_eq!(rows[0].0, "EEG");
    }
}
