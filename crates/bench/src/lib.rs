//! # cleanml-bench
//!
//! The reproduction harness: one binary per paper table (Tables 11–19),
//! scientific ablation binaries, and Criterion micro-benchmarks.
//!
//! Every `tableNN` binary regenerates the corresponding table of the paper's
//! evaluation section from scratch — generate datasets, run the §IV protocol
//! through the `cleanml-engine` scheduler, apply Benjamini–Yekutieli, issue
//! the §V-A queries — and prints rows in the paper's `NN% (count)` format.
//! Absolute counts depend on the synthetic stand-ins (see `DESIGN.md` §4);
//! the *shape* — which flags dominate, which methods/models/datasets
//! deviate — is the reproduction target, recorded in `EXPERIMENTS.md`.
//!
//! All binaries accept a profile argument:
//!
//! * `--quick` — 6 splits, no tuning (seconds; CI smoke).
//! * `--standard` — the default: paper's 20 splits, default hyper-parameters.
//! * `--paper` — 20 splits with random search + 5-fold CV (slow).
//!
//! plus the engine flags:
//!
//! * `--workers N` — worker threads (default: all cores).
//! * `--cache-dir DIR` — persistent artifact cache; a re-run against a warm
//!   cache skips all finished training.

use std::sync::mpsc;

use cleanml_core::database::FlagDist;
use cleanml_core::schema::ErrorType;
use cleanml_core::{CleanMlDb, ExperimentConfig};
use cleanml_engine::{parallel_map, Engine, EngineConfig, EngineEvent};
use cleanml_stats::Flag;

/// Parses the common CLI profile flags.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--paper") {
        ExperimentConfig::paper()
    } else if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    };
    if let Some(pos) = args.iter().position(|a| a == "--splits") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
            cfg.n_splits = n.max(2);
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(s) = args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            cfg.base_seed = s;
        }
    }
    cfg
}

/// Parses the engine CLI flags (`--workers`, `--cache-dir`).
pub fn engine_from_args() -> EngineConfig {
    let args: Vec<String> = std::env::args().collect();
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|p| args.get(p + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|p| args.get(p + 1))
        .map(std::path::PathBuf::from);
    EngineConfig { workers, cache_dir }
}

/// Worker count the binaries should use for coarse-grained
/// [`cleanml_engine::parallel_map`] jobs.
pub fn job_workers() -> usize {
    engine_from_args().effective_workers()
}

/// Runs a study through the engine with live progress on stderr — the
/// shared entry point of every `tableNN` binary.
pub fn run_study_cli(error_types: &[ErrorType], cfg: &ExperimentConfig) -> CleanMlDb {
    let engine_cfg = engine_from_args();
    let (tx, rx) = mpsc::channel();
    let mut engine = Engine::new(engine_cfg).with_events(tx);
    eprintln!("[engine] {} workers", engine.workers());

    let render = std::thread::spawn(move || {
        let mut to_run = 0usize;
        let mut done = 0usize;
        for event in rx {
            match event {
                EngineEvent::GraphReady { total, cache_hits, pruned, to_run: t } => {
                    to_run = t;
                    eprintln!(
                        "[engine] {total} tasks: {t} to run, {cache_hits} cache hits, \
                         {pruned} pruned"
                    );
                }
                EngineEvent::TaskFinished { ok: true, .. } => {
                    done += 1;
                    if done.is_multiple_of(100) || done == to_run {
                        eprint!("\r[engine] {done}/{to_run} tasks done");
                    }
                }
                EngineEvent::RunFinished if to_run > 0 => {
                    eprintln!();
                }
                _ => {}
            }
        }
    });

    let started = std::time::Instant::now();
    let (db, report) = engine.run_study_with_report(error_types, cfg).expect("engine study run");
    drop(engine); // closes the event channel
    render.join().expect("progress thread");
    let by_kind: Vec<String> =
        report.executed.iter().map(|(k, n)| format!("{} {}", n, k.name())).collect();
    eprintln!(
        "[engine] executed {} tasks in {:.1?} ({}); cache: {} hits, {} pruned",
        report.executed_total(),
        started.elapsed(),
        if by_kind.is_empty() { "all cached".to_string() } else { by_kind.join(", ") },
        report.cache_hits,
        report.pruned,
    );
    db
}

/// Fans the per-dataset jobs of grouped comparisons (Tables 17/19) out on
/// the engine job pool and regroups the flags by comparison, preserving
/// order.
pub fn grouped_flags<F>(comparisons: &[(&[&str], ErrorType)], f: F) -> Vec<Vec<Flag>>
where
    F: Fn(&str, ErrorType) -> Flag + Sync,
{
    let jobs: Vec<(usize, &str, ErrorType)> = comparisons
        .iter()
        .enumerate()
        .flat_map(|(ci, (datasets, et))| datasets.iter().map(move |&d| (ci, d, *et)))
        .collect();
    let flags = parallel_map(&jobs, job_workers(), |&(_, name, et)| f(name, et));
    let mut grouped = vec![Vec::new(); comparisons.len()];
    for (&(ci, _, _), flag) in jobs.iter().zip(flags) {
        grouped[ci].push(flag);
    }
    grouped
}

/// Escapes one CSV field per RFC 4180: fields containing commas, quotes,
/// newlines or carriage returns are quoted, with embedded quotes doubled.
pub fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Converts a grouped query result into printable rows.
pub fn rows_of<K: std::fmt::Display>(
    map: &std::collections::BTreeMap<K, FlagDist>,
) -> Vec<(String, FlagDist)> {
    map.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// Builds a [`FlagDist`] from individual flags (Tables 17–19 aggregation).
pub fn dist_of(flags: &[Flag]) -> FlagDist {
    let mut d = FlagDist::default();
    for &f in flags {
        d.add(f);
    }
    d
}

/// Prints the run configuration banner.
pub fn banner(table: &str, cfg: &ExperimentConfig) {
    println!(
        "CleanML reproduction — {table} | splits={} search={:?} alpha={} seed={}",
        cfg.n_splits, cfg.search, cfg.alpha, cfg.base_seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_aggregation() {
        let d = dist_of(&[Flag::Positive, Flag::Negative, Flag::Positive]);
        assert_eq!(d.p, 2);
        assert_eq!(d.n, 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn rows_render() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("EEG".to_string(), FlagDist { p: 1, s: 0, n: 0 });
        let rows = rows_of(&m);
        assert_eq!(rows[0].0, "EEG");
    }

    #[test]
    fn grouped_flags_preserves_comparison_order() {
        let comparisons: [(&[&str], ErrorType); 2] =
            [(&["A", "B"], ErrorType::Outliers), (&["C"], ErrorType::Duplicates)];
        let grouped = grouped_flags(&comparisons, |name, et| {
            if name == "B" || et == ErrorType::Duplicates {
                Flag::Positive
            } else {
                Flag::Insignificant
            }
        });
        assert_eq!(grouped, vec![vec![Flag::Insignificant, Flag::Positive], vec![Flag::Positive]]);
    }

    #[test]
    fn csv_escaping_covers_rfc4180() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_escape("cr\rhere"), "\"cr\rhere\"");
        assert_eq!(csv_escape(""), "");
    }
}
