//! # cleanml-bench
//!
//! The reproduction harness: one binary per paper table (Tables 11–19),
//! scientific ablation binaries, and Criterion micro-benchmarks.
//!
//! Every `tableNN` binary regenerates the corresponding table of the paper's
//! evaluation section from scratch — generate datasets, run the §IV protocol
//! through the `cleanml-engine` scheduler, apply Benjamini–Yekutieli, issue
//! the §V-A queries — and prints rows in the paper's `NN% (count)` format.
//! Absolute counts depend on the synthetic stand-ins (see `DESIGN.md` §4);
//! the *shape* — which flags dominate, which methods/models/datasets
//! deviate — is the reproduction target, recorded in `EXPERIMENTS.md`.
//!
//! All binaries accept a profile argument:
//!
//! * `--quick` — 6 splits, no tuning (seconds; CI smoke).
//! * `--standard` — the default: paper's 20 splits, default hyper-parameters.
//! * `--paper` — 20 splits with random search + 5-fold CV (slow).
//!
//! plus the engine flags:
//!
//! * `--workers N` — worker threads (default: all cores).
//! * `--cache-dir DIR` — persistent artifact cache; a killed or repeated
//!   run against a warm cache skips all finished cleaning and training.
//! * `--cache-max-bytes N[k|m|g]` — byte budget for the cache directory;
//!   least-recently-used artifacts are evicted to stay under it.
//! * `--cache-stats` — print an end-of-run cache summary line (memory/disk
//!   hits, misses, writes, evictions, store size, remote accounting).
//! * `--listen ADDR` — accept remote `cleanml-worker` connections; remote
//!   workers lease ready tasks and ship artifacts back over TCP.
//! * `--lease-timeout SECS` — how long a leased worker may go silent
//!   before its task is re-queued (default 5).
//! * `--trace-out FILE` — record per-task spans and write them as Chrome
//!   trace-event JSON on exit (load in `chrome://tracing` / Perfetto).

use std::sync::mpsc;

use cleanml_core::database::FlagDist;
use cleanml_core::schema::ErrorType;
use cleanml_core::{CleanMlDb, ExperimentConfig};
use cleanml_engine::{
    parallel_map, CacheStats, Engine, EngineConfig, EngineEvent, RunReport, ServeReport, SlowTask,
    StatsSnapshot,
};
use cleanml_stats::Flag;

/// Parses the common CLI profile flags.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--paper") {
        ExperimentConfig::paper()
    } else if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    };
    if let Some(pos) = args.iter().position(|a| a == "--splits") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
            cfg.n_splits = n.max(2);
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(s) = args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            cfg.base_seed = s;
        }
    }
    cfg
}

/// Parses the engine CLI flags (`--workers`, `--cache-dir`,
/// `--cache-max-bytes`, `--listen`, `--lease-timeout`, `--http-token`).
pub fn engine_from_args() -> EngineConfig {
    let args: Vec<String> = std::env::args().collect();
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|p| args.get(p + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|p| args.get(p + 1))
        .map(std::path::PathBuf::from);
    let cache_max_bytes = args.iter().position(|a| a == "--cache-max-bytes").map(|p| {
        let value = args.get(p + 1).map(String::as_str).unwrap_or("");
        // An explicitly requested byte budget must never be silently
        // dropped — an unbounded run the user believes is capped is worse
        // than no flag at all.
        parse_byte_size(value).unwrap_or_else(|| {
            eprintln!("error: --cache-max-bytes expects N[k|m|g], got `{value}`");
            std::process::exit(2);
        })
    });
    let listen = args.iter().position(|a| a == "--listen").map(|p| {
        // An explicitly requested coordinator must never silently run
        // local-only (workers elsewhere would retry against nothing).
        args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --listen expects HOST:PORT");
            std::process::exit(2);
        })
    });
    let lease_timeout = args
        .iter()
        .position(|a| a == "--lease-timeout")
        .map(|p| {
            let value = args.get(p + 1).map(String::as_str).unwrap_or("");
            // Same contract as the byte budget: an explicit deadline is
            // never silently replaced by the default.
            match value.parse::<u64>() {
                Ok(secs) if secs > 0 => std::time::Duration::from_secs(secs),
                _ => {
                    eprintln!("error: --lease-timeout expects whole seconds > 0, got `{value}`");
                    std::process::exit(2);
                }
            }
        })
        .unwrap_or(cleanml_engine::DEFAULT_LEASE_TIMEOUT);
    let http_token = args.iter().position(|a| a == "--http-token").map(|p| {
        // An explicitly requested token must never be silently dropped —
        // an open gateway the operator believes is authenticated is a
        // security hole, not a default.
        match args.get(p + 1) {
            Some(tok) if !tok.is_empty() && !tok.starts_with("--") => tok.clone(),
            _ => {
                eprintln!("error: --http-token expects a non-empty token");
                std::process::exit(2);
            }
        }
    });
    EngineConfig { workers, cache_dir, cache_max_bytes, listen, lease_timeout, http_token }
}

/// Parses a byte size: a plain integer, optionally suffixed `k`/`m`/`g`
/// (case-insensitive, powers of 1024), e.g. `64m`.
pub fn parse_byte_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 10),
        'm' | 'M' => (&s[..s.len() - 1], 20),
        'g' | 'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits.parse::<u64>().ok()?.checked_mul(1u64 << shift)
}

/// Worker count the binaries should use for coarse-grained
/// [`cleanml_engine::parallel_map`] jobs.
pub fn job_workers() -> usize {
    engine_from_args().effective_workers()
}

/// Parses one error-type name, tolerant of case, spaces and underscores
/// (`missing_values`, `Missing Values` and `missingvalues` all match).
pub fn parse_error_type(token: &str) -> Option<ErrorType> {
    let norm = |s: &str| -> String {
        s.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_ascii_lowercase()
    };
    let wanted = norm(token);
    ErrorType::all().into_iter().find(|et| norm(et.name()) == wanted)
}

/// Parses a comma-separated error-type list for `--errors`.
pub fn parse_error_types(list: &str) -> Option<Vec<ErrorType>> {
    list.split(',').map(|tok| parse_error_type(tok.trim())).collect()
}

/// Rebuilds the [`cache_stats_line`] inputs from a wire [`ServeReport`] —
/// how `cleanml-query` prints the server's accounting.
pub fn stats_from_serve_report(r: &ServeReport) -> (CacheStats, Option<(u64, usize)>, RunReport) {
    let stats = CacheStats {
        memory_hits: r.memory_hits as usize,
        disk_hits: r.disk_hits as usize,
        misses: r.misses as usize,
        disk_writes: r.disk_writes as usize,
        disk_evictions: r.disk_evictions as usize,
    };
    let totals = Some((r.store_bytes, r.store_entries as usize));
    let report = RunReport {
        executed: r.executed.iter().map(|&(k, n)| (k, n as usize)).collect(),
        remote_executed: r.remote_executed.iter().map(|&(k, n)| (k, n as usize)).collect(),
        cache_hits: r.cache_hits as usize,
        pruned: r.pruned as usize,
        total: r.total as usize,
        workers: 0,
        remote_workers: r.remote_workers as usize,
        releases: r.releases as usize,
    };
    (stats, totals, report)
}

/// Rebuilds the [`cache_stats_line`] inputs from a telemetry
/// [`StatsSnapshot`] delta — the run's figures as the metrics registry
/// observed them, rather than as the `RunReport` tallied them. The two
/// agree for a single CLI run; deriving the line from the registry makes
/// the `--cache-stats` output a cross-check of the telemetry plane.
pub fn stats_from_registry_delta(d: &StatsSnapshot) -> (CacheStats, RunReport) {
    use cleanml_engine::TaskKind;
    let kinds = |counts: &[u64]| -> Vec<(TaskKind, usize)> {
        TaskKind::ALL
            .iter()
            .zip(counts)
            .filter(|&(_, &n)| n > 0)
            .map(|(&k, &n)| (k, n as usize))
            .collect()
    };
    let stats = CacheStats {
        memory_hits: d.memory_hits as usize,
        disk_hits: d.disk_hits as usize,
        misses: d.misses as usize,
        disk_writes: d.store_writes as usize,
        disk_evictions: d.store_evictions as usize,
    };
    let report = RunReport {
        executed: kinds(&d.executed_local),
        remote_executed: kinds(&d.executed_remote),
        cache_hits: 0,
        pruned: 0,
        total: 0,
        workers: 0,
        remote_workers: d.workers_joined as usize,
        releases: d.releases as usize,
    };
    (stats, report)
}

/// Runs a study through the engine with live progress on stderr — the
/// shared entry point of every `tableNN` binary.
pub fn run_study_cli(error_types: &[ErrorType], cfg: &ExperimentConfig) -> CleanMlDb {
    let engine_cfg = engine_from_args();
    let telemetry = cleanml_engine::telemetry::global();
    let trace_out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--trace-out").map(|p| {
            // An explicitly requested trace must never be silently
            // skipped — same contract as the other engine flags.
            args.get(p + 1).map(std::path::PathBuf::from).unwrap_or_else(|| {
                eprintln!("error: --trace-out expects FILE");
                std::process::exit(2);
            })
        })
    };
    if trace_out.is_some() {
        telemetry.start_tracing();
    }
    let (tx, rx) = mpsc::channel();
    let mut engine = Engine::new(engine_cfg).with_events(tx);
    eprintln!("[engine] {} workers", engine.workers());
    if let Some(addr) = engine.remote_addr() {
        eprintln!("[engine] listening on {addr} (connect with: cleanml-worker --connect {addr})");
    }

    let render = std::thread::spawn(move || {
        let mut to_run = 0usize;
        let mut done = 0usize;
        for event in rx {
            match event {
                EngineEvent::GraphReady { total, cache_hits, pruned, to_run: t } => {
                    to_run = t;
                    eprintln!(
                        "[engine] {total} tasks: {t} to run, {cache_hits} cache hits, \
                         {pruned} pruned"
                    );
                }
                EngineEvent::TaskFinished { ok: true, .. } => {
                    done += 1;
                    if done.is_multiple_of(100) || done == to_run {
                        eprint!("\r[engine] {done}/{to_run} tasks done");
                    }
                }
                EngineEvent::WorkerJoined { worker } => {
                    eprintln!("\n[engine] remote worker joined: {worker}");
                }
                EngineEvent::LeaseExpired { worker, id, kind } => {
                    eprintln!(
                        "\n[engine] lease expired: task {id} ({}) re-queued after silence \
                         from {worker}",
                        kind.name()
                    );
                }
                EngineEvent::WorkerLeft { worker, completed } => {
                    eprintln!("\n[engine] remote worker left: {worker} ({completed} tasks)");
                }
                EngineEvent::RunFinished if to_run > 0 => {
                    eprintln!();
                }
                _ => {}
            }
        }
    });

    let started = std::time::Instant::now();
    let before = telemetry.stats_snapshot();
    telemetry.reset_slow_tasks(); // run boundary: the table is per-run
    let (db, report) = engine.run_study_with_report(error_types, cfg).expect("engine study run");
    let delta = telemetry.stats_snapshot().since(&before);
    let stats = engine.cache_stats();
    let store_totals = engine.disk_store().map(|s| (s.total_bytes(), s.len()));
    let store_line = store_totals.map(|(bytes, _)| {
        format!(
            "; store: {} writes, {} evicted, {} B",
            stats.disk_writes, stats.disk_evictions, bytes
        )
    });
    drop(engine); // closes the event channel
    render.join().expect("progress thread");
    let by_kind: Vec<String> =
        report.executed.iter().map(|(k, n)| format!("{} {}", n, k.name())).collect();
    let remote_line = if report.remote_workers > 0 {
        format!(
            "; remote: {} workers executed {} tasks, {} leases re-queued",
            report.remote_workers,
            report.remote_total(),
            report.releases,
        )
    } else {
        String::new()
    };
    eprintln!(
        "[engine] executed {} tasks in {:.1?} ({}); cache: {} hits, {} pruned{}{}",
        report.executed_total(),
        started.elapsed(),
        if by_kind.is_empty() { "all cached".to_string() } else { by_kind.join(", ") },
        report.cache_hits,
        report.pruned,
        store_line.unwrap_or_default(),
        remote_line,
    );
    if std::env::args().any(|a| a == "--cache-stats") {
        // The line is derived from the metrics registry (snapshot delta
        // over the run), not the RunReport — byte-identical figures for a
        // single run, and a standing cross-check that the telemetry plane
        // counts what the scheduler does. With telemetry disabled the
        // registry saw nothing, so fall back to the report.
        let slow = telemetry.slowest_tasks();
        let cv = (delta.cv_fits, delta.fold_reuse);
        let line = if telemetry.enabled() {
            let (stats, run) = stats_from_registry_delta(&delta);
            cache_stats_line(&stats, store_totals, &run, cv, &slow)
        } else {
            cache_stats_line(&stats, store_totals, &report, cv, &slow)
        };
        println!("{line}");
        for (i, s) in slow.iter().enumerate() {
            eprintln!(
                "[engine] slowest {}: {} {} ({}) {:.1} ms",
                i + 1,
                s.kind,
                s.label,
                if s.class.is_empty() { "-" } else { &s.class },
                s.dur_us as f64 / 1000.0,
            );
        }
    }
    if let Some(path) = trace_out {
        match telemetry.write_trace(&path) {
            Ok(n) => eprintln!("[engine] wrote {n} trace events to {}", path.display()),
            Err(e) => eprintln!("[engine] trace write failed ({}): {e}", path.display()),
        }
    }
    db
}

/// Renders the end-of-run `--cache-stats` summary: layer-by-layer counters,
/// the persistent store's size, and the run's execution provenance (local
/// vs remote, plus re-leased orphans), in a stable greppable format.
/// `executed_train` counts `Train` tasks across both provenances — the
/// warm-memo acceptance signal (a warm serve answers with
/// `executed_train=0`). `cv` is the run's `(cv_fits, fold_reuse)` delta
/// from the fold plane: how many candidate×fold model fits the search
/// grid executed and how many fold materializations were answered by an
/// already-built `FoldPlan` view (a warm serve, having trained nothing,
/// reports `cv_fits=0`). `slow` is the registry's top-8 slowest-tasks
/// table; each entry renders as `kind:class:duration` (`-` when empty).
pub fn cache_stats_line(
    stats: &CacheStats,
    store_totals: Option<(u64, usize)>,
    report: &RunReport,
    cv: (u64, u64),
    slow: &[SlowTask],
) -> String {
    use cleanml_engine::TaskKind;
    let (store_bytes, store_entries) = store_totals.unwrap_or((0, 0));
    let (cv_fits, fold_reuse) = cv;
    format!(
        "[cache-stats] memory_hits={} disk_hits={} misses={} disk_writes={} \
         disk_evictions={} store_entries={} store_bytes={} executed_local={} \
         executed_remote={} executed_train={} remote_workers={} releases={} \
         cv_fits={} fold_reuse={} slowest={}",
        stats.memory_hits,
        stats.disk_hits,
        stats.misses,
        stats.disk_writes,
        stats.disk_evictions,
        store_entries,
        store_bytes,
        report.local_total(),
        report.remote_total(),
        report.executed(TaskKind::Train) + report.remote(TaskKind::Train),
        report.remote_workers,
        report.releases,
        cv_fits,
        fold_reuse,
        slowest_tasks_field(slow),
    )
}

/// The `slowest=` field of [`cache_stats_line`]: comma-joined
/// `kind:class:duration` entries, slowest first (`-` when the table is
/// empty or telemetry was off).
pub fn slowest_tasks_field(slow: &[SlowTask]) -> String {
    if slow.is_empty() {
        return "-".into();
    }
    slow.iter()
        .map(|s| {
            format!(
                "{}:{}:{:.1}ms",
                s.kind,
                if s.class.is_empty() { "-" } else { &s.class },
                s.dur_us as f64 / 1000.0,
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Fans the per-dataset jobs of grouped comparisons (Tables 17/19) out on
/// the engine job pool and regroups the flags by comparison, preserving
/// order.
pub fn grouped_flags<F>(comparisons: &[(&[&str], ErrorType)], f: F) -> Vec<Vec<Flag>>
where
    F: Fn(&str, ErrorType) -> Flag + Sync,
{
    let jobs: Vec<(usize, &str, ErrorType)> = comparisons
        .iter()
        .enumerate()
        .flat_map(|(ci, (datasets, et))| datasets.iter().map(move |&d| (ci, d, *et)))
        .collect();
    let flags = parallel_map(&jobs, job_workers(), |&(_, name, et)| f(name, et));
    let mut grouped = vec![Vec::new(); comparisons.len()];
    for (&(ci, _, _), flag) in jobs.iter().zip(flags) {
        grouped[ci].push(flag);
    }
    grouped
}

/// The canonical RFC-4180 field escaping lives beside the relation
/// renderers in `cleanml_core::database`; re-exported here for the table
/// binaries.
pub use cleanml_core::database::csv_escape;

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Converts a grouped query result into printable rows.
pub fn rows_of<K: std::fmt::Display>(
    map: &std::collections::BTreeMap<K, FlagDist>,
) -> Vec<(String, FlagDist)> {
    map.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// Builds a [`FlagDist`] from individual flags (Tables 17–19 aggregation).
pub fn dist_of(flags: &[Flag]) -> FlagDist {
    let mut d = FlagDist::default();
    for &f in flags {
        d.add(f);
    }
    d
}

/// Prints the run configuration banner.
pub fn banner(table: &str, cfg: &ExperimentConfig) {
    println!(
        "CleanML reproduction — {table} | splits={} search={:?} alpha={} seed={}",
        cfg.n_splits, cfg.search, cfg.alpha, cfg.base_seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_aggregation() {
        let d = dist_of(&[Flag::Positive, Flag::Negative, Flag::Positive]);
        assert_eq!(d.p, 2);
        assert_eq!(d.n, 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn rows_render() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("EEG".to_string(), FlagDist { p: 1, s: 0, n: 0 });
        let rows = rows_of(&m);
        assert_eq!(rows[0].0, "EEG");
    }

    #[test]
    fn grouped_flags_preserves_comparison_order() {
        let comparisons: [(&[&str], ErrorType); 2] =
            [(&["A", "B"], ErrorType::Outliers), (&["C"], ErrorType::Duplicates)];
        let grouped = grouped_flags(&comparisons, |name, et| {
            if name == "B" || et == ErrorType::Duplicates {
                Flag::Positive
            } else {
                Flag::Insignificant
            }
        });
        assert_eq!(grouped, vec![vec![Flag::Insignificant, Flag::Positive], vec![Flag::Positive]]);
    }

    #[test]
    fn csv_escaping_covers_rfc4180() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_escape("cr\rhere"), "\"cr\rhere\"");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn cache_stats_line_is_stable_and_greppable() {
        use cleanml_engine::TaskKind;
        let stats = CacheStats {
            memory_hits: 1,
            disk_hits: 2,
            misses: 3,
            disk_writes: 4,
            disk_evictions: 5,
        };
        let report = RunReport {
            executed: vec![(TaskKind::Train, 6), (TaskKind::Reduce, 2)],
            remote_executed: vec![(TaskKind::Train, 9)],
            remote_workers: 2,
            releases: 1,
            ..Default::default()
        };
        let slow = vec![
            SlowTask {
                label: "train eeg lr".into(),
                kind: "Train",
                class: "eeg".into(),
                dur_us: 5_250,
            },
            SlowTask {
                label: "clean citation".into(),
                kind: "Clean",
                class: String::new(),
                dur_us: 900,
            },
        ];
        assert_eq!(
            cache_stats_line(&stats, Some((1024, 7)), &report, (45, 30), &slow),
            "[cache-stats] memory_hits=1 disk_hits=2 misses=3 disk_writes=4 \
             disk_evictions=5 store_entries=7 store_bytes=1024 executed_local=8 \
             executed_remote=9 executed_train=15 remote_workers=2 releases=1 \
             cv_fits=45 fold_reuse=30 slowest=Train:eeg:5.2ms,Clean:-:0.9ms"
        );
        // no persistent layer / purely local run: fields read as zero,
        // line shape stable
        let local = cache_stats_line(&stats, None, &RunReport::default(), (0, 0), &[]);
        assert!(local.contains("store_entries=0 store_bytes=0"));
        assert!(local.ends_with(
            "executed_local=0 executed_remote=0 executed_train=0 remote_workers=0 releases=0 \
             cv_fits=0 fold_reuse=0 slowest=-"
        ));
    }

    #[test]
    fn error_type_names_parse_tolerantly() {
        assert_eq!(parse_error_type("missing_values"), Some(ErrorType::MissingValues));
        assert_eq!(parse_error_type("Missing Values"), Some(ErrorType::MissingValues));
        assert_eq!(parse_error_type("MISLABELS"), Some(ErrorType::Mislabels));
        assert_eq!(parse_error_type("nonsense"), None);
        assert_eq!(
            parse_error_types("outliers, duplicates"),
            Some(vec![ErrorType::Outliers, ErrorType::Duplicates])
        );
        assert_eq!(parse_error_types("outliers,bogus"), None);
    }

    #[test]
    fn serve_report_reconstructs_the_stats_line() {
        use cleanml_engine::TaskKind;
        let report = ServeReport {
            memory_hits: 5,
            disk_hits: 1,
            misses: 2,
            store_entries: 3,
            store_bytes: 4096,
            executed: vec![(TaskKind::Reduce, 2)],
            cache_hits: 9,
            ..Default::default()
        };
        let (stats, totals, run) = stats_from_serve_report(&report);
        let line = cache_stats_line(&stats, totals, &run, (0, 0), &[]);
        assert!(line.contains("memory_hits=5"), "{line}");
        assert!(line.contains("store_bytes=4096"), "{line}");
        assert!(line.contains("executed_local=2"), "{line}");
        assert!(line.contains("executed_train=0"), "{line}");
        assert!(line.contains("cv_fits=0 fold_reuse=0"), "{line}");
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("12345"), Some(12345));
        assert_eq!(parse_byte_size("64k"), Some(64 << 10));
        assert_eq!(parse_byte_size("8M"), Some(8 << 20));
        assert_eq!(parse_byte_size("2g"), Some(2 << 30));
        assert_eq!(parse_byte_size(" 1k "), Some(1024));
        assert_eq!(parse_byte_size("x"), None);
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("18446744073709551615g"), None, "overflow rejected");
    }
}
